package netdist

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

func strv(s string) ast.Value { return ast.Str(s) }
func intv(n int64) ast.Value  { return ast.Int(n) }

// d1Fixture builds the D1 experiment twice: once as the in-process
// dist.System over one store holding everything, once as a netdist
// Coordinator whose remote relation r lives behind a loopback site.
func d1Fixture(t *testing.T, density, nUpdates int, seed int64) (*dist.System, *Coordinator, *Loopback, []store.Update) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	L := workload.Intervals(rng, density, 20, 200)
	updates := workload.IntervalInserts(rand.New(rand.NewSource(seed+1)), nUpdates, 10, 200, "l")

	// Arm 1: everything in one store, remote access simulated by cost.
	full := store.New()
	for _, tu := range L {
		if _, err := full.Insert("l", tu); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 50; i++ {
		if _, err := full.Insert("r", relation.Ints(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Both arms disable residual dispatch: the fixture compares the cost
	// model's remote-trip prediction (driven by the staged pipeline's
	// global phase) against measured scan requests, and Coordinator
	// prefetch follows the residual-unaware core.Plan.
	sys := dist.NewWithOptions(full, core.Options{LocalRelations: []string{"l"}, DisableResidual: true}, dist.DefaultCost)
	if err := sys.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}

	// Arm 2: r lives on a site behind the loopback transport.
	remote := store.New()
	for i := int64(0); i < 50; i++ {
		if _, err := remote.Insert("r", relation.Ints(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	lb := NewLoopback()
	lb.AddSite("siteR", NewServer(remote, []string{"r"}))
	local := store.New()
	for _, tu := range L {
		if _, err := local.Insert("l", tu); err != nil {
			t.Fatal(err)
		}
	}
	co, err := New(local, []SiteSpec{{Site: "siteR", Relations: []string{"r"}}}, lb,
		Options{Checker: core.Options{LocalRelations: []string{"l"}, DisableResidual: true}, Timeout: time.Second, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return sys, co, lb, updates
}

// renderReport gives a canonical text form of a core.Report for
// byte-identical comparison (Values hold *big.Rat, so direct
// reflect.DeepEqual would compare pointers' targets — fine — but the
// string form also makes failures readable).
func renderReport(rep core.Report) string {
	return fmt.Sprintf("%s applied=%v decisions=%v", rep.Update, rep.Applied, rep.Decisions)
}

func TestCoordinatorMatchesDistOnD1(t *testing.T) {
	for _, density := range []int{10, 80} {
		sys, co, _, updates := d1Fixture(t, density, 60, 42)
		for i, u := range updates {
			want, err := sys.Apply(u)
			if err != nil {
				t.Fatal(err)
			}
			got, err := co.Apply(u)
			if err != nil {
				t.Fatal(err)
			}
			if renderReport(got) != renderReport(want) {
				t.Fatalf("density %d, update %d: coordinator diverged\n got: %s\nwant: %s",
					density, i, renderReport(got), renderReport(want))
			}
		}
		// The two stores agree relation by relation.
		full, mirror := sys.Checker.DB(), co.Checker.DB()
		for _, name := range full.Names() {
			if mr := mirror.Relation(name); mr == nil || !full.Relation(name).Equal(mr) {
				t.Errorf("density %d: relation %s diverged", density, name)
			}
		}
		// The cost model's remote-trip prediction matches what actually
		// crossed the wire: one scan request per global-phase update
		// (plus none for locally decided ones).
		dst, cst := sys.Stats(), co.Stats()
		if cst.RoundTrips != dst.RemoteTrips {
			t.Errorf("density %d: %d measured round trips, cost model predicted %d",
				density, cst.RoundTrips, dst.RemoteTrips)
		}
		if cst.DecidedLocally != dst.DecidedLocally {
			t.Errorf("density %d: decided-locally %d (net) vs %d (dist)",
				density, cst.DecidedLocally, dst.DecidedLocally)
		}
		if !reflect.DeepEqual(cst.ByPhase, dst.ByPhase) {
			t.Errorf("density %d: phase histograms diverged: %v vs %v", density, cst.ByPhase, dst.ByPhase)
		}
	}
}

func TestCoordinatorRemoteWritePropagation(t *testing.T) {
	remote := store.New()
	if _, err := remote.Insert("dept", relation.Strs("toy")); err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	lb.AddSite("s1", NewServer(remote, []string{"dept"}))
	local := store.New()
	if _, err := local.Insert("emp", relation.TupleOf(strv("ann"), strv("toy"), intv(50))); err != nil {
		t.Fatal(err)
	}
	co, err := New(local, []SiteSpec{{Site: "s1", Relations: []string{"dept"}}}, lb,
		Options{Checker: core.Options{LocalRelations: []string{"emp"}}, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("ri", "panic :- emp(E,D,S) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	rep, err := co.Apply(store.Ins("dept", relation.Strs("shoe")))
	if err != nil || !rep.Applied {
		t.Fatalf("insert into remote dept: rep=%+v err=%v", rep, err)
	}
	if !remote.Contains("dept", relation.Strs("shoe")) {
		t.Error("remote write was not propagated to the owning site")
	}
	// Deleting a referenced department is rejected locally and must not
	// reach the site.
	rep, err = co.Apply(store.Del("dept", relation.Strs("toy")))
	if err != nil || rep.Applied {
		t.Fatalf("delete of referenced dept: rep=%+v err=%v", rep, err)
	}
	if !remote.Contains("dept", relation.Strs("toy")) {
		t.Error("rejected delete reached the remote site")
	}
}

func TestCoordinatorApplyBatchRollsBackAcrossSites(t *testing.T) {
	remote := store.New()
	if _, err := remote.Insert("dept", relation.Strs("toy")); err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	lb.AddSite("s1", NewServer(remote, []string{"dept"}))
	local := store.New()
	co, err := New(local, []SiteSpec{{Site: "s1", Relations: []string{"dept"}}}, lb,
		Options{Checker: core.Options{LocalRelations: []string{"emp"}}, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("ri", "panic :- emp(E,D,S) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	br, err := co.ApplyBatch([]store.Update{
		store.Ins("dept", relation.Strs("shoe")),
		store.Ins("emp", relation.TupleOf(strv("bob"), strv("shoe"), intv(60))),
		store.Ins("emp", relation.TupleOf(strv("eve"), strv("ghost"), intv(70))), // violates
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied || br.FailedAt != 2 {
		t.Fatalf("batch: %+v", br)
	}
	if remote.Contains("dept", relation.Strs("shoe")) {
		t.Error("batch rollback did not un-propagate the remote insert")
	}
	if co.Checker.DB().Contains("emp", relation.TupleOf(strv("bob"), strv("shoe"), intv(60))) {
		t.Error("batch rollback left a local insert")
	}
}

func TestCoordinatorRejectsConflictingSpecs(t *testing.T) {
	lb := NewLoopback()
	lb.AddSite("a", NewServer(store.New(), []string{"r"}))
	lb.AddSite("b", NewServer(store.New(), []string{"r"}))
	if _, err := New(store.New(), []SiteSpec{{Site: "a", Relations: []string{"r"}}, {Site: "b", Relations: []string{"r"}}}, lb, Options{}); err == nil {
		t.Error("relation claimed by two sites accepted")
	}
	if _, err := New(store.New(), []SiteSpec{{Site: "a", Relations: []string{"r"}}}, lb,
		Options{Checker: core.Options{LocalRelations: []string{"r"}}}); err == nil {
		t.Error("relation both local and remote accepted")
	}
}

func TestCoordinatorInitialSyncFailure(t *testing.T) {
	lb := NewLoopback()
	lb.AddSite("s1", NewServer(store.New(), []string{"r"}))
	lb.Partition("s1")
	_, err := New(store.New(), []SiteSpec{{Site: "s1", Relations: []string{"r"}}}, lb,
		Options{Retries: -1, Backoff: time.Millisecond})
	if !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("initial sync against a partitioned site: err=%v", err)
	}
}

func TestParseSiteSpec(t *testing.T) {
	spec, err := ParseSiteSpec("127.0.0.1:7070=r, s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Site != "127.0.0.1:7070" || !reflect.DeepEqual(spec.Relations, []string{"r", "s"}) {
		t.Errorf("spec = %+v", spec)
	}
	for _, bad := range []string{"", "hostonly", "=r", "h:1=", "h:1=r,,s"} {
		if _, err := ParseSiteSpec(bad); err == nil {
			t.Errorf("ParseSiteSpec(%q) accepted", bad)
		}
	}
}
