package netdist

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
)

// SiteSpec binds a site address to the relations it owns.
type SiteSpec struct {
	Site      string
	Relations []string
}

// ParseSiteSpec parses the ccheck flag syntax "host:port=rel1,rel2".
func ParseSiteSpec(s string) (SiteSpec, error) {
	addr, rels, ok := strings.Cut(s, "=")
	if !ok || strings.TrimSpace(addr) == "" {
		return SiteSpec{}, fmt.Errorf("netdist: site spec %q is not host:port=rel1,rel2", s)
	}
	spec := SiteSpec{Site: strings.TrimSpace(addr)}
	for _, r := range strings.Split(rels, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return SiteSpec{}, fmt.Errorf("netdist: site spec %q has an empty relation name", s)
		}
		spec.Relations = append(spec.Relations, r)
	}
	if len(spec.Relations) == 0 {
		return SiteSpec{}, fmt.Errorf("netdist: site spec %q serves no relations", s)
	}
	return spec, nil
}

// Options configure a Coordinator.
type Options struct {
	// Checker configures the staged pipeline. LocalRelations names the
	// relations resident at the coordinator; every relation claimed by a
	// SiteSpec is remote and must not appear in it.
	Checker core.Options
	// Timeout bounds each wire round trip (default 2s).
	Timeout time.Duration
	// Retries is how many times a failed round trip is re-attempted
	// (0 means the default of 3; negative disables retrying).
	Retries int
	// Backoff is the first retry delay; subsequent retries double it,
	// each with up to 50% added jitter (default 10ms).
	Backoff time.Duration
	// Metrics, when non-nil, receives the coordinator's wire metrics:
	// per-op RPC latency histograms, per-site round-trip/retry/error
	// counters and frame-byte totals (names in DESIGN.md). Independent of
	// Checker.Metrics — pass the same registry to see both sides.
	Metrics *obs.Registry
	// Spans, when non-nil, makes each site RPC of a traced request a
	// child span ("rpc.<op>") of the bridge's active span, propagates it
	// over Request.Trace, and adopts the site's echoed spans — so the
	// coordinator's trace store ends up with the full cross-process tree.
	// Pass the same bridge that serves as Checker.Tracer.
	Spans *obs.SpanBridge
	// ApplyWorkers > 1 routes ApplyBatch through the conflict-aware
	// scheduler (internal/sched): non-conflicting updates overlap their
	// phase-1–3 checks and site RPCs instead of running strictly one at
	// a time, while the batch stays atomic. 0 or 1 keeps the sequential
	// path. The pipelined path requires the checker to admit concurrent
	// applies (it does, unless Checker.Incremental) and falls back to
	// sequential otherwise. ApplyStream takes its worker count as an
	// argument instead.
	ApplyWorkers int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Timeout <= 0 {
		out.Timeout = 2 * time.Second
	}
	if out.Retries < 0 {
		out.Retries = 0
	} else if out.Retries == 0 {
		out.Retries = 3
	}
	if out.Backoff <= 0 {
		out.Backoff = 10 * time.Millisecond
	}
	return out
}

// Stats aggregates the coordinator's accounting: the measured
// counterpart of dist.Stats' modeled costs.
type Stats struct {
	Updates  int
	Rejected int
	// Unavailable counts updates refused with ErrSiteUnavailable: a site
	// they needed was unreachable, so no verdict was issued.
	Unavailable int
	ByPhase     map[core.Phase]int
	// DecidedLocally counts updates that needed no wire traffic.
	DecidedLocally int
	// RoundTrips counts wire requests that completed (response
	// received), Retries the extra attempts after failures, WireTuples
	// the tuples shipped back over the wire.
	RoundTrips int
	Retries    int
	WireTuples int64
	// RetriesBySite breaks Retries down by the site that failed the
	// attempt; UnavailableBySite breaks Unavailable down by the site whose
	// outage refused the update. Sites absent from the maps never misbehaved
	// — a healthy run has both empty.
	RetriesBySite     map[string]int
	UnavailableBySite map[string]int
	// NetTime is wall clock spent waiting on the wire (fetches,
	// propagations, failed attempts).
	NetTime time.Duration
	// SyncTrips/SyncTuples account the one-time initial mirror sync in
	// New, kept apart so the per-update counters above line up with the
	// dist cost model's per-update predictions.
	SyncTrips  int
	SyncTuples int64
}

// Coordinator runs the staged checker over a local mirror and reaches
// remote sites over a Transport only when an update's plan requires the
// global phase. Like dist.System it exposes Apply/ApplyBatch/Stats — the
// difference is that its remote accesses are real requests with real
// failure modes, not cost-model entries.
//
// Freshness contract: phases 1–3 use only constraints, the update and
// local relations, so they never need the mirror's remote entries;
// before any global evaluation the coordinator re-fetches exactly the
// remote relations the undecided constraints mention. A site outage
// therefore fails only the updates whose plan needed that site —
// reported as ErrSiteUnavailable, never as a verdict.
//
// Concurrency: the coordinator's own accounting is mutex-guarded, and
// its transports tolerate concurrent round trips — but Apply/Check are
// safe to overlap only for updates with non-conflicting footprints
// (core.Checker's contract). Callers must not race conflicting applies
// themselves; ApplyStream and the pipelined ApplyBatch enforce the
// discipline with internal/sched, and remain equivalent to a sequential
// run in admission order.
type Coordinator struct {
	Checker *core.Checker

	mirror    *store.Store
	transport Transport
	siteOf    map[string]string   // relation -> owning site
	relsOf    map[string][]string // site -> owned relations, sorted
	opts      Options
	met       *coordMetrics
	reqID     atomic.Uint64

	// statsMu guards stats and rng (retry jitter); everything else is
	// immutable after New or internally synchronized.
	statsMu sync.Mutex
	stats   Stats
	rng     *rand.Rand
}

// New builds a coordinator over the local store and the given site
// specs, then performs an initial sync: every remote relation is
// scanned into the mirror so the checker starts from the same global
// state dist.System would see. The local store must hold only local
// relations; a relation claimed by two sites, or both local and remote,
// is an error.
func New(local *store.Store, sites []SiteSpec, tr Transport, opts Options) (*Coordinator, error) {
	co := &Coordinator{
		mirror:    local,
		transport: tr,
		siteOf:    map[string]string{},
		relsOf:    map[string][]string{},
		opts:      opts.withDefaults(),
		stats: Stats{
			ByPhase:           map[core.Phase]int{},
			RetriesBySite:     map[string]int{},
			UnavailableBySite: map[string]int{},
		},
		rng: rand.New(rand.NewSource(1)),
	}
	if opts.Metrics != nil {
		co.met = newCoordMetrics(opts.Metrics)
	}
	localSet := map[string]bool{}
	for _, n := range opts.Checker.LocalRelations {
		localSet[n] = true
	}
	for _, spec := range sites {
		for _, rel := range spec.Relations {
			if other, ok := co.siteOf[rel]; ok {
				return nil, fmt.Errorf("netdist: relation %s claimed by sites %s and %s", rel, other, spec.Site)
			}
			if localSet[rel] {
				return nil, fmt.Errorf("netdist: relation %s is both local and served by %s", rel, spec.Site)
			}
			co.siteOf[rel] = spec.Site
			co.relsOf[spec.Site] = append(co.relsOf[spec.Site], rel)
		}
	}
	for _, rels := range co.relsOf {
		sort.Strings(rels)
	}
	if err := co.refresh(co.remoteRelations()); err != nil {
		return nil, err
	}
	co.stats.SyncTrips, co.stats.RoundTrips = co.stats.RoundTrips, 0
	co.stats.SyncTuples, co.stats.WireTuples = co.stats.WireTuples, 0
	co.stats.Retries = 0
	co.stats.RetriesBySite = map[string]int{}
	co.Checker = core.New(local, opts.Checker)
	return co, nil
}

// remoteRelations returns every site-owned relation, sorted.
func (co *Coordinator) remoteRelations() []string {
	out := make([]string, 0, len(co.siteOf))
	for rel := range co.siteOf {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

// Stats returns the accumulated statistics; the maps are copies.
func (co *Coordinator) Stats() Stats {
	co.statsMu.Lock()
	defer co.statsMu.Unlock()
	st := co.stats
	st.ByPhase = make(map[core.Phase]int, len(co.stats.ByPhase))
	for p, n := range co.stats.ByPhase {
		st.ByPhase[p] = n
	}
	st.RetriesBySite = make(map[string]int, len(co.stats.RetriesBySite))
	for s, n := range co.stats.RetriesBySite {
		st.RetriesBySite[s] = n
	}
	st.UnavailableBySite = make(map[string]int, len(co.stats.UnavailableBySite))
	for s, n := range co.stats.UnavailableBySite {
		st.UnavailableBySite[s] = n
	}
	return st
}

// call performs one request with bounded retries and exponential
// backoff with jitter. Transport errors retry; RemoteErrors (the site
// answered and refused) do not. After the last failed attempt the error
// is a *SiteError matching ErrSiteUnavailable.
func (co *Coordinator) call(site string, req *Request) (*Response, error) {
	req.ID = co.reqID.Add(1)
	var sp *obs.Span
	if parent := co.opts.Spans.Active(); parent != nil {
		sp = co.opts.Spans.Tracer().StartChild(parent, "rpc."+req.Type)
		sp.SetAttr("site", site)
		if req.Relation != "" {
			sp.SetAttr("relation", req.Relation)
		}
		req.Trace = sp.Context().Traceparent()
		defer sp.End()
	}
	backoff := co.opts.Backoff
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= co.opts.Retries; attempt++ {
		attempts++
		if attempt > 0 {
			co.statsMu.Lock()
			co.stats.Retries++
			co.stats.RetriesBySite[site]++
			jitter := time.Duration(co.rng.Int63n(int64(backoff)/2 + 1))
			co.statsMu.Unlock()
			if co.met != nil {
				co.met.retries.With(site).Inc()
			}
			time.Sleep(backoff + jitter)
			backoff *= 2
		}
		start := time.Now()
		resp, err := co.transport.RoundTrip(site, req, co.opts.Timeout)
		elapsed := time.Since(start)
		co.statsMu.Lock()
		co.stats.NetTime += elapsed
		co.statsMu.Unlock()
		co.met.observeAttempt(site, req.Type, req, resp, err, elapsed)
		if err != nil {
			lastErr = err
			continue
		}
		co.statsMu.Lock()
		co.stats.RoundTrips++
		co.statsMu.Unlock()
		if sp != nil {
			if attempts > 1 {
				sp.SetAttr("attempts", fmt.Sprint(attempts))
			}
			for _, ws := range resp.Spans {
				if sd, err := DecodeSpan(ws); err == nil {
					co.opts.Spans.Tracer().Adopt([]obs.SpanData{sd})
				}
			}
		}
		if !resp.OK {
			err := &RemoteError{Site: site, Msg: resp.Err}
			sp.SetError(err.Error())
			return nil, err
		}
		co.statsMu.Lock()
		co.stats.WireTuples += int64(len(resp.Tuples))
		co.statsMu.Unlock()
		return resp, nil
	}
	err := &SiteError{Site: site, Err: lastErr}
	sp.SetError(err.Error())
	return nil, err
}

// refresh re-fetches the given relations from their owning sites into
// the mirror. Relations not owned by any site are ignored (they are
// local or derived). One scan per relation; the first unreachable site
// aborts with its SiteError.
func (co *Coordinator) refresh(rels []string) error {
	for _, rel := range rels {
		site, ok := co.siteOf[rel]
		if !ok {
			continue
		}
		resp, err := co.call(site, &Request{Type: OpScan, Relation: rel})
		if err != nil {
			return err
		}
		ts, err := DecodeTuples(resp.Tuples)
		if err != nil {
			return &RemoteError{Site: site, Msg: err.Error()}
		}
		arity := resp.Arity
		if arity == 0 {
			// Empty, never-used relation: keep the mirror's arity if it
			// already has one, otherwise skip (nothing to store).
			if r := co.mirror.Relation(rel); r != nil {
				arity = r.Arity()
			} else {
				continue
			}
		}
		if err := co.mirror.Replace(rel, arity, ts); err != nil {
			return &RemoteError{Site: site, Msg: err.Error()}
		}
	}
	return nil
}

// Apply pushes one update through the pipeline. When the update's plan
// needs remote data that cannot be fetched, it returns an error
// matching ErrSiteUnavailable and the database is untouched; updates
// decidable from local information commit regardless of site health.
func (co *Coordinator) Apply(u store.Update) (core.Report, error) {
	co.statsMu.Lock()
	co.stats.Updates++
	co.statsMu.Unlock()

	// Decide what the global phase would need before touching anything.
	plan := co.Checker.Plan(u)
	var needed []string
	for _, rel := range plan.Relations {
		if _, remote := co.siteOf[rel]; remote {
			needed = append(needed, rel)
		}
	}
	if err := co.refresh(needed); err != nil {
		co.noteUnavailable(err)
		return core.Report{Update: u}, fmt.Errorf("update %s: %w", u, err)
	}
	rep, err := co.Checker.Apply(u)
	if err != nil {
		return rep, err
	}
	// Propagate an applied update on a remote relation to its owner; if
	// the owner is unreachable the local application is undone — the
	// sites never diverge from the mirror over a failure.
	propagated := false
	if site, remote := co.siteOf[u.Relation]; remote && rep.Applied {
		propagated = true
		_, err := co.call(site, &Request{
			Type:     OpApply,
			Relation: u.Relation,
			Insert:   u.Insert,
			Tuple:    EncodeTuple(u.Tuple),
		})
		if err != nil {
			co.undoMirror(u)
			co.noteUnavailable(err)
			return core.Report{Update: u}, fmt.Errorf("update %s: propagate: %w", u, err)
		}
	}
	co.statsMu.Lock()
	for _, d := range rep.Decisions {
		co.stats.ByPhase[d.Phase]++
	}
	if !rep.Applied {
		co.stats.Rejected++
	}
	// Wire-free iff no remote relation needed a refresh and nothing was
	// propagated; computed directly because the old round-trip-delta
	// comparison misattributes other updates' traffic under concurrent
	// appliers.
	if len(needed) == 0 && !propagated {
		co.stats.DecidedLocally++
	}
	co.statsMu.Unlock()
	return rep, nil
}

// Check decides one update without committing anything: the remote
// relations its plan needs are refreshed, then the checker decides and
// exactly undoes its trial application (core.Checker.Check). Nothing is
// propagated, so the sites are untouched whatever the verdict.
func (co *Coordinator) Check(u store.Update) (core.Report, error) {
	co.statsMu.Lock()
	co.stats.Updates++
	co.statsMu.Unlock()
	plan := co.Checker.Plan(u)
	var needed []string
	for _, rel := range plan.Relations {
		if _, remote := co.siteOf[rel]; remote {
			needed = append(needed, rel)
		}
	}
	if err := co.refresh(needed); err != nil {
		co.noteUnavailable(err)
		return core.Report{Update: u}, fmt.Errorf("update %s: %w", u, err)
	}
	rep, err := co.Checker.Check(u)
	if err != nil {
		return rep, err
	}
	co.statsMu.Lock()
	for _, d := range rep.Decisions {
		co.stats.ByPhase[d.Phase]++
	}
	if len(needed) == 0 {
		co.stats.DecidedLocally++
	}
	co.statsMu.Unlock()
	return rep, nil
}

// ServeBackend adapts a Coordinator to internal/serve's Backend surface
// (satisfied structurally — serve is not imported), so a decision server
// can front a multi-site system. It is an adapter rather than methods on
// Coordinator because the backend's Stats() must return the checker's
// core.Stats while Coordinator.Stats() reports wire accounting.
type ServeBackend struct{ Co *Coordinator }

// Check decides without applying (Coordinator.Check).
func (b ServeBackend) Check(u store.Update) (core.Report, error) { return b.Co.Check(u) }

// Apply decides and, when admitted, applies and propagates.
func (b ServeBackend) Apply(u store.Update) (core.Report, error) { return b.Co.Apply(u) }

// ApplyBatch applies the updates as one atomic transaction.
func (b ServeBackend) ApplyBatch(us []store.Update) (core.BatchReport, error) {
	return b.Co.ApplyBatch(us)
}

// Stats snapshots the wrapped checker's statistics.
func (b ServeBackend) Stats() core.Stats { return b.Co.Checker.Stats() }

// Footprints exposes the wrapped checker's conflict-footprint index so a
// pipelined server (serve.Config.ApplyWorkers > 1) can schedule
// coordinator applies concurrently. The coordinator side is safe for
// that discipline: its accounting is mutex-guarded and its transports
// tolerate concurrent round trips.
func (b ServeBackend) Footprints() *sched.Index { return b.Co.Checker.Footprints() }

// ConcurrentApplySafe defers to the wrapped checker.
func (b ServeBackend) ConcurrentApplySafe() bool { return b.Co.Checker.ConcurrentApplySafe() }

// noteUnavailable accounts one update refused because a site was
// unreachable, attributing it to the offending site when the error chain
// names one. A RemoteError (site answered, refused) lands here only from
// refresh's decode path and counts site-less.
func (co *Coordinator) noteUnavailable(err error) {
	co.statsMu.Lock()
	co.stats.Unavailable++
	var se *SiteError
	if errors.As(err, &se) {
		co.stats.UnavailableBySite[se.Site]++
	}
	co.statsMu.Unlock()
	if co.met != nil {
		co.met.unavailable.Inc()
	}
}

// undoMirror reverts an applied update on the mirror at store level
// (used when remote propagation fails after local commit).
func (co *Coordinator) undoMirror(u store.Update) {
	if u.Insert {
		co.mirror.Delete(u.Relation, u.Tuple)
	} else {
		if _, err := co.mirror.Insert(u.Relation, u.Tuple); err != nil {
			panic(fmt.Sprintf("netdist: mirror undo failed: %v", err))
		}
	}
}

// ApplyBatch applies the updates as one atomic transaction, mirroring
// core.Checker.ApplyBatch: on the first rejection or error every
// already-applied update is undone locally and, for remote relations,
// un-propagated. FailedAt reports the offending index on rejection.
// With Options.ApplyWorkers > 1 the batch runs on the pipelined path
// (see applyBatchPipelined): same verdicts, same final state, same
// batch atomicity — overlapping wire waits of independent updates.
func (co *Coordinator) ApplyBatch(updates []store.Update) (core.BatchReport, error) {
	if co.opts.ApplyWorkers > 1 && co.Checker.ConcurrentApplySafe() {
		return co.applyBatchPipelined(updates, co.opts.ApplyWorkers)
	}
	br := core.BatchReport{Applied: true, FailedAt: -1}
	type undo struct {
		u       store.Update
		changed bool
	}
	var undos []undo
	rollback := func() error {
		for i := len(undos) - 1; i >= 0; i-- {
			if !undos[i].changed {
				continue
			}
			u := undos[i].u
			co.undoMirror(u)
			if site, remote := co.siteOf[u.Relation]; remote {
				inv := &Request{Type: OpApply, Relation: u.Relation, Insert: !u.Insert, Tuple: EncodeTuple(u.Tuple)}
				if _, err := co.call(site, inv); err != nil {
					return fmt.Errorf("netdist: batch rollback of %s: %w", u, err)
				}
			}
		}
		return nil
	}
	for i, u := range updates {
		changes := co.mirror.Contains(u.Relation, u.Tuple) != u.Insert
		rep, err := co.Apply(u)
		if err != nil {
			if rbErr := rollback(); rbErr != nil {
				return br, rbErr
			}
			return br, err
		}
		br.Reports = append(br.Reports, rep)
		if !rep.Applied {
			br.Applied = false
			br.FailedAt = i
			if err := rollback(); err != nil {
				return br, err
			}
			return br, nil
		}
		undos = append(undos, undo{u: u, changed: changes})
	}
	return br, nil
}

// Report renders the statistics as a small table, the measured
// counterpart of dist.System.Report.
func (co *Coordinator) Report() string {
	st := co.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "updates: %d  rejected: %d  unavailable: %d  decided-locally: %d\n",
		st.Updates, st.Rejected, st.Unavailable, st.DecidedLocally)
	fmt.Fprintf(&sb, "wire: %d round trips (%d retries), %d tuples, %s on the network\n",
		st.RoundTrips, st.Retries, st.WireTuples, st.NetTime.Round(time.Microsecond))
	if len(st.RetriesBySite) > 0 {
		fmt.Fprintf(&sb, "retries by site: %s\n", siteCounts(st.RetriesBySite))
	}
	if len(st.UnavailableBySite) > 0 {
		fmt.Fprintf(&sb, "degraded sites: %s\n", siteCounts(st.UnavailableBySite))
	}
	var phases []core.Phase
	for p := range st.ByPhase {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		fmt.Fprintf(&sb, "  decided by %-12s %d\n", p.String()+":", st.ByPhase[p])
	}
	return sb.String()
}

// siteCounts renders a per-site counter map as "site=count" pairs in
// site order.
func siteCounts(m map[string]int) string {
	sites := make([]string, 0, len(m))
	for s := range m {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = fmt.Sprintf("%s=%d", s, m[s])
	}
	return strings.Join(parts, "  ")
}
