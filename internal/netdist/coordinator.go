package netdist

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/store"
)

// SiteSpec binds a site address to the relations it owns.
type SiteSpec struct {
	Site      string
	Relations []string
}

// ParseSiteSpec parses the ccheck flag syntax "host:port=rel1,rel2".
func ParseSiteSpec(s string) (SiteSpec, error) {
	addr, rels, ok := strings.Cut(s, "=")
	if !ok || strings.TrimSpace(addr) == "" {
		return SiteSpec{}, fmt.Errorf("netdist: site spec %q is not host:port=rel1,rel2", s)
	}
	spec := SiteSpec{Site: strings.TrimSpace(addr)}
	for _, r := range strings.Split(rels, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return SiteSpec{}, fmt.Errorf("netdist: site spec %q has an empty relation name", s)
		}
		spec.Relations = append(spec.Relations, r)
	}
	if len(spec.Relations) == 0 {
		return SiteSpec{}, fmt.Errorf("netdist: site spec %q serves no relations", s)
	}
	return spec, nil
}

// Options configure a Coordinator.
type Options struct {
	// Checker configures the staged pipeline. LocalRelations names the
	// relations resident at the coordinator; every relation claimed by a
	// SiteSpec is remote and must not appear in it.
	Checker core.Options
	// Timeout bounds each wire round trip (default 2s).
	Timeout time.Duration
	// Retries is how many times a failed round trip is re-attempted
	// (0 means the default of 3; negative disables retrying).
	Retries int
	// Backoff is the first retry delay; subsequent retries double it,
	// each with up to 50% added jitter (default 10ms).
	Backoff time.Duration
	// Metrics, when non-nil, receives the coordinator's wire metrics:
	// per-op RPC latency histograms, per-site round-trip/retry/error
	// counters and frame-byte totals (names in DESIGN.md). Independent of
	// Checker.Metrics — pass the same registry to see both sides.
	Metrics *obs.Registry
	// Spans, when non-nil, makes each site RPC of a traced request a
	// child span ("rpc.<op>") of the bridge's active span, propagates it
	// over Request.Trace, and adopts the site's echoed spans — so the
	// coordinator's trace store ends up with the full cross-process tree.
	// Pass the same bridge that serves as Checker.Tracer.
	Spans *obs.SpanBridge
	// ApplyWorkers > 1 routes ApplyBatch through the conflict-aware
	// scheduler (internal/sched): non-conflicting updates overlap their
	// phase-1–3 checks and site RPCs instead of running strictly one at
	// a time, while the batch stays atomic. 0 or 1 keeps the sequential
	// path. The pipelined path requires the checker to admit concurrent
	// applies (it does, unless Checker.Incremental) and falls back to
	// sequential otherwise. ApplyStream takes its worker count as an
	// argument instead.
	ApplyWorkers int
	// DisableShardRouting is the scatter-gather A/B arm: sharded
	// relations are always refreshed in full (every shard scanned and
	// merged into the mirror) and evaluation probes are never routed to
	// shards. Verdicts are unchanged — only the wire traffic differs —
	// which is what makes the routed-vs-scatter byte comparison in
	// scripts/bench.sh meaningful.
	DisableShardRouting bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Timeout <= 0 {
		out.Timeout = 2 * time.Second
	}
	if out.Retries < 0 {
		out.Retries = 0
	} else if out.Retries == 0 {
		out.Retries = 3
	}
	if out.Backoff <= 0 {
		out.Backoff = 10 * time.Millisecond
	}
	return out
}

// Stats aggregates the coordinator's accounting: the measured
// counterpart of dist.Stats' modeled costs.
type Stats struct {
	Updates  int
	Rejected int
	// Unavailable counts updates refused with ErrSiteUnavailable: a site
	// they needed was unreachable, so no verdict was issued.
	Unavailable int
	ByPhase     map[core.Phase]int
	// DecidedLocally counts updates that needed no wire traffic.
	DecidedLocally int
	// RoundTrips counts wire requests that completed (response
	// received), Retries the extra attempts after failures, WireTuples
	// the tuples shipped back over the wire.
	RoundTrips int
	Retries    int
	WireTuples int64
	// RetriesBySite breaks Retries down by the site that failed the
	// attempt; UnavailableBySite breaks Unavailable down by the site whose
	// outage refused the update. Sites absent from the maps never misbehaved
	// — a healthy run has both empty.
	RetriesBySite     map[string]int
	UnavailableBySite map[string]int
	// NetTime is wall clock spent waiting on the wire (fetches,
	// propagations, failed attempts).
	NetTime time.Duration
	// SyncTrips/SyncTuples account the one-time initial mirror sync in
	// New, kept apart so the per-update counters above line up with the
	// dist cost model's per-update predictions.
	SyncTrips  int
	SyncTuples int64
	// ShardRouted counts reads of a sharded relation that went to the
	// single owning shard (keyed mirror refreshes + routed evaluation
	// probes); ShardScatter counts reads that fanned out to every shard.
	// KeyFetches is the keyed-refresh subset of ShardRouted. All three
	// stay zero without sharded placement.
	ShardRouted  int
	ShardScatter int
	KeyFetches   int
	// ReplicaReads counts shard reads served by a fresh replica instead
	// of the leader; ReplicaResyncs counts full rebuilds of a replica
	// after its feed broke.
	ReplicaReads   int
	ReplicaResyncs int
}

// Coordinator runs the staged checker over a local mirror and reaches
// remote sites over a Transport only when an update's plan requires the
// global phase. Like dist.System it exposes Apply/ApplyBatch/Stats — the
// difference is that its remote accesses are real requests with real
// failure modes, not cost-model entries.
//
// Freshness contract: phases 1–3 use only constraints, the update and
// local relations, so they never need the mirror's remote entries;
// before any global evaluation the coordinator re-fetches exactly the
// remote relations the undecided constraints mention. A site outage
// therefore fails only the updates whose plan needed that site —
// reported as ErrSiteUnavailable, never as a verdict.
//
// Concurrency: the coordinator's own accounting is mutex-guarded, and
// its transports tolerate concurrent round trips — but Apply/Check are
// safe to overlap only for updates with non-conflicting footprints
// (core.Checker's contract). Callers must not race conflicting applies
// themselves; ApplyStream and the pipelined ApplyBatch enforce the
// discipline with internal/sched, and remain equivalent to a sequential
// run in admission order.
type Coordinator struct {
	Checker *core.Checker

	mirror    *store.Store
	transport Transport
	place     Placement                // relation -> shards (remote relations only)
	shardsOf  map[string][]*shardState // relation -> per-shard leader/replica state
	opts      Options
	met       *coordMetrics
	shmet     *shardMetrics
	reqID     atomic.Uint64
	// applyGen advances at every Apply/Check/ApplyBatch entry; the shard
	// router keys its probe cache on it so one update's evaluation reuses
	// fetched groups while later updates see fresh state.
	applyGen atomic.Uint64
	// router is non-nil when some relation is sharded and routing is
	// enabled; it is also installed as the checker's eval.ProbeRouter.
	router *shardRouter
	// replWG tracks queued replication ops (FlushReplicas).
	replWG sync.WaitGroup

	// statsMu guards stats and rng (retry jitter); everything else is
	// immutable after New or internally synchronized.
	statsMu sync.Mutex
	stats   Stats
	rng     *rand.Rand
}

// New builds a coordinator over the local store and the given site
// specs, then performs an initial sync: every remote relation is
// scanned into the mirror so the checker starts from the same global
// state dist.System would see. The local store must hold only local
// relations; a relation claimed by two sites, or both local and remote,
// is an error.
func New(local *store.Store, sites []SiteSpec, tr Transport, opts Options) (*Coordinator, error) {
	seen := map[string]string{}
	for _, spec := range sites {
		for _, rel := range spec.Relations {
			if other, ok := seen[rel]; ok {
				return nil, fmt.Errorf("netdist: relation %s claimed by sites %s and %s", rel, other, spec.Site)
			}
			seen[rel] = spec.Site
		}
	}
	return NewPlaced(local, PlacementFromSites(sites), tr, opts)
}

// NewPlaced is New with an explicit placement: relations may be whole
// (one shard — today's mode, what New builds), hash-partitioned across
// several leader sites by a key column, and carry read replicas per
// shard. Sharded placement installs the placement as the checker's
// footprint Sharder (different-shard updates of one relation pipeline
// concurrently) and, unless Options.DisableShardRouting, a probe router
// that serves global-evaluation reads of sharded relations straight from
// the owning shard.
func NewPlaced(local *store.Store, place Placement, tr Transport, opts Options) (*Coordinator, error) {
	if err := place.validate(); err != nil {
		return nil, err
	}
	co := &Coordinator{
		mirror:    local,
		transport: tr,
		place:     place,
		shardsOf:  map[string][]*shardState{},
		opts:      opts.withDefaults(),
		stats: Stats{
			ByPhase:           map[core.Phase]int{},
			RetriesBySite:     map[string]int{},
			UnavailableBySite: map[string]int{},
		},
		rng: rand.New(rand.NewSource(1)),
	}
	if opts.Metrics != nil {
		co.met = newCoordMetrics(opts.Metrics)
	}
	localSet := map[string]bool{}
	for _, n := range opts.Checker.LocalRelations {
		localSet[n] = true
	}
	anySharded := false
	for rel, rp := range place {
		if localSet[rel] {
			return nil, fmt.Errorf("netdist: relation %s is both local and remotely placed", rel)
		}
		if rp.Sharded() {
			anySharded = true
		}
		shards := make([]*shardState, len(rp.Shards))
		for i, sh := range rp.Shards {
			ss := &shardState{rel: rel, idx: i, leader: sh.Leader}
			for _, site := range sh.Replicas {
				rs := &replicaState{site: site}
				// A replica serves no reads before its first resync: the
				// watermark starts below any sequence number so readTarget
				// skips it while it is still empty.
				rs.watermark.Store(-1)
				ss.replicas = append(ss.replicas, rs)
			}
			shards[i] = ss
		}
		co.shardsOf[rel] = shards
	}
	if anySharded {
		if opts.Checker.Incremental {
			return nil, fmt.Errorf("netdist: sharded placement is incompatible with Checker.Incremental")
		}
		co.opts.Checker.Sharder = place
		if !co.opts.DisableShardRouting {
			co.router = newShardRouter(co)
			co.opts.Checker.ProbeRouter = co.router
		}
	}
	if co.opts.Metrics != nil && (anySharded || co.hasReplicas()) {
		co.shmet = newShardMetrics(co.opts.Metrics)
	}
	if err := co.refresh(co.remoteRelations()); err != nil {
		return nil, err
	}
	// Seed the replicas synchronously so a healthy cluster starts with
	// every watermark current; an unreachable replica starts stale and is
	// rebuilt lazily by its first queued write.
	for _, shards := range co.shardsOf {
		for _, ss := range shards {
			for _, rs := range ss.replicas {
				if err := co.resyncReplica(ss, rs); err != nil {
					rs.stale = true
				}
			}
		}
	}
	co.stats.SyncTrips, co.stats.RoundTrips = co.stats.RoundTrips, 0
	co.stats.SyncTuples, co.stats.WireTuples = co.stats.WireTuples, 0
	co.stats.Retries = 0
	co.stats.RetriesBySite = map[string]int{}
	co.stats.ShardRouted, co.stats.ShardScatter, co.stats.KeyFetches = 0, 0, 0
	co.stats.ReplicaReads, co.stats.ReplicaResyncs = 0, 0
	co.Checker = core.New(local, co.opts.Checker)
	return co, nil
}

// hasReplicas reports whether any shard carries a read replica.
func (co *Coordinator) hasReplicas() bool {
	for _, shards := range co.shardsOf {
		for _, ss := range shards {
			if len(ss.replicas) > 0 {
				return true
			}
		}
	}
	return false
}

// remoteRelations returns every remotely-placed relation, sorted.
func (co *Coordinator) remoteRelations() []string {
	out := make([]string, 0, len(co.place))
	for rel := range co.place {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out
}

// Stats returns the accumulated statistics; the maps are copies.
func (co *Coordinator) Stats() Stats {
	co.statsMu.Lock()
	defer co.statsMu.Unlock()
	st := co.stats
	st.ByPhase = make(map[core.Phase]int, len(co.stats.ByPhase))
	for p, n := range co.stats.ByPhase {
		st.ByPhase[p] = n
	}
	st.RetriesBySite = make(map[string]int, len(co.stats.RetriesBySite))
	for s, n := range co.stats.RetriesBySite {
		st.RetriesBySite[s] = n
	}
	st.UnavailableBySite = make(map[string]int, len(co.stats.UnavailableBySite))
	for s, n := range co.stats.UnavailableBySite {
		st.UnavailableBySite[s] = n
	}
	return st
}

// call performs one request with bounded retries and exponential
// backoff with jitter. Transport errors retry; RemoteErrors (the site
// answered and refused) do not. After the last failed attempt the error
// is a *SiteError matching ErrSiteUnavailable.
func (co *Coordinator) call(site string, req *Request) (*Response, error) {
	req.ID = co.reqID.Add(1)
	var sp *obs.Span
	if parent := co.opts.Spans.Active(); parent != nil {
		sp = co.opts.Spans.Tracer().StartChild(parent, "rpc."+req.Type)
		sp.SetAttr("site", site)
		if req.Relation != "" {
			sp.SetAttr("relation", req.Relation)
		}
		req.Trace = sp.Context().Traceparent()
		defer sp.End()
	}
	backoff := co.opts.Backoff
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= co.opts.Retries; attempt++ {
		attempts++
		if attempt > 0 {
			co.statsMu.Lock()
			co.stats.Retries++
			co.stats.RetriesBySite[site]++
			jitter := time.Duration(co.rng.Int63n(int64(backoff)/2 + 1))
			co.statsMu.Unlock()
			if co.met != nil {
				co.met.retries.With(site).Inc()
			}
			time.Sleep(backoff + jitter)
			backoff *= 2
		}
		start := time.Now()
		resp, err := co.transport.RoundTrip(site, req, co.opts.Timeout)
		elapsed := time.Since(start)
		co.statsMu.Lock()
		co.stats.NetTime += elapsed
		co.statsMu.Unlock()
		co.met.observeAttempt(site, req.Type, req, resp, err, elapsed)
		if err != nil {
			lastErr = err
			continue
		}
		co.statsMu.Lock()
		co.stats.RoundTrips++
		co.statsMu.Unlock()
		if sp != nil {
			if attempts > 1 {
				sp.SetAttr("attempts", fmt.Sprint(attempts))
			}
			for _, ws := range resp.Spans {
				if sd, err := DecodeSpan(ws); err == nil {
					co.opts.Spans.Tracer().Adopt([]obs.SpanData{sd})
				}
			}
		}
		if !resp.OK {
			err := &RemoteError{Site: site, Msg: resp.Err}
			sp.SetError(err.Error())
			return nil, err
		}
		co.statsMu.Lock()
		co.stats.WireTuples += int64(len(resp.Tuples))
		co.statsMu.Unlock()
		return resp, nil
	}
	err := &SiteError{Site: site, Err: lastErr}
	sp.SetError(err.Error())
	return nil, err
}

// refresh re-fetches the given relations into the mirror in full.
// Relations not remotely placed are ignored (they are local or derived).
// One scan per shard; the first unreachable site aborts with its
// SiteError.
func (co *Coordinator) refresh(rels []string) error {
	for _, rel := range rels {
		if _, ok := co.place[rel]; !ok {
			continue
		}
		if err := co.refreshRel(rel); err != nil {
			return err
		}
	}
	return nil
}

// refreshRel rebuilds the mirror's copy of one placed relation from a
// scan of every shard (a single scan for whole relations). Each shard is
// read from a fresh replica when one exists, falling back to the leader.
func (co *Coordinator) refreshRel(rel string) error {
	shards := co.shardsOf[rel]
	var ts []relation.Tuple
	arity := 0
	for _, ss := range shards {
		site := co.readTarget(ss)
		resp, err := co.call(site, &Request{Type: OpScan, Relation: rel})
		if err != nil {
			return err
		}
		part, err := DecodeTuples(resp.Tuples)
		if err != nil {
			return &RemoteError{Site: site, Msg: err.Error()}
		}
		ts = append(ts, part...)
		if resp.Arity > arity {
			arity = resp.Arity
		}
	}
	if len(shards) > 1 {
		co.noteScatter(1)
	}
	if arity == 0 {
		// Empty, never-used relation: keep the mirror's arity if it
		// already has one, otherwise skip (nothing to store).
		if r := co.mirror.Relation(rel); r != nil {
			arity = r.Arity()
		} else {
			return nil
		}
	}
	if err := co.mirror.Replace(rel, arity, ts); err != nil {
		return &RemoteError{Site: "", Msg: err.Error()}
	}
	return nil
}

// refreshKeys refreshes exactly the given key groups of a sharded
// relation: each key is fetched from its owning shard and swapped into
// the mirror with store.ReplaceKey, so the mirror is precisely as fresh
// as the residual path's keyed probes require — shipping one key group
// instead of the whole relation is the scale-out analogue of the paper's
// "consult as little information as the update requires".
func (co *Coordinator) refreshKeys(rel string, pl RelPlacement, keys []ast.Value) error {
	for _, key := range keys {
		ss := co.shardsOf[rel][co.place.ShardOf(rel, key)]
		site := co.readTarget(ss)
		sp := co.routeSpan(rel, "key-fetch")
		resp, err := co.call(site, &Request{
			Type:     OpFetch,
			Relation: rel,
			Col:      pl.KeyCol,
			Value:    EncodeValue(key),
		})
		if sp != nil {
			sp.End()
		}
		if err != nil {
			return err
		}
		ts, err := DecodeTuples(resp.Tuples)
		if err != nil {
			return &RemoteError{Site: site, Msg: err.Error()}
		}
		arity := resp.Arity
		if arity == 0 {
			if r := co.mirror.Relation(rel); r != nil {
				arity = r.Arity()
			} else {
				continue // relation nowhere materialized: no stale group to swap
			}
		}
		if err := co.mirror.ReplaceKey(rel, arity, pl.KeyCol, key, ts); err != nil {
			return &RemoteError{Site: site, Msg: err.Error()}
		}
		co.statsMu.Lock()
		co.stats.KeyFetches++
		co.statsMu.Unlock()
		if co.shmet != nil {
			co.shmet.keyFetches.Inc()
		}
	}
	co.noteRouted(1)
	return nil
}

// refreshForUpdate refreshes what this update's check may read. Whole
// relations refresh in full, as ever. Sharded relations consult the
// footprint index's residual-aware read plan: keyed residual probes pull
// just their key groups from the owning shards, unkeyed residual reads
// scatter-refresh, and relations read only through global evaluation are
// left to the probe router (no refresh at all). The returned count is
// the number of remote relations the update needed (0 = decidable
// wire-free).
func (co *Coordinator) refreshForUpdate(u store.Update, planRels []string) (int, error) {
	needed := 0
	var rp sched.ReadPlan
	haveRP := false
	for _, rel := range planRels {
		pl, remote := co.place[rel]
		if !remote {
			continue
		}
		needed++
		if !pl.Sharded() {
			if err := co.refreshRel(rel); err != nil {
				return needed, err
			}
			continue
		}
		if co.opts.DisableShardRouting {
			if err := co.refreshRel(rel); err != nil {
				return needed, err
			}
			continue
		}
		if !haveRP {
			rp = co.Checker.Footprints().ReadPlan(u)
			haveRP = true
		}
		switch {
		case rp.Mirror[rel]:
			if err := co.refreshRel(rel); err != nil {
				return needed, err
			}
		case len(rp.Keys[rel]) > 0:
			if err := co.refreshKeys(rel, pl, rp.Keys[rel]); err != nil {
				return needed, err
			}
		case rp.Eval[rel]:
			// Router-served: probes reach the owning shard at evaluation
			// time; the mirror is not touched.
		default:
			// The residual-aware analysis proves this update's check never
			// reads rel (the plan's relation list is residual-unaware and
			// conservative); nothing to refresh, and no wire need.
			needed--
		}
	}
	return needed, nil
}

// noteRouted/noteScatter account single-shard-targeted and fan-out reads
// of sharded relations.
func (co *Coordinator) noteRouted(n int) {
	co.statsMu.Lock()
	co.stats.ShardRouted += n
	co.statsMu.Unlock()
	if co.shmet != nil {
		co.shmet.routed.Add(int64(n))
	}
}

func (co *Coordinator) noteScatter(n int) {
	co.statsMu.Lock()
	co.stats.ShardScatter += n
	co.statsMu.Unlock()
	if co.shmet != nil {
		co.shmet.scatter.Add(int64(n))
	}
}

// routeSpan opens a "shard.route" child span under the active trace (nil
// when tracing is off or idle).
func (co *Coordinator) routeSpan(rel, mode string) *obs.Span {
	parent := co.opts.Spans.Active()
	if parent == nil {
		return nil
	}
	sp := co.opts.Spans.Tracer().StartChild(parent, "shard.route")
	sp.SetAttr("relation", rel)
	sp.SetAttr("mode", mode)
	return sp
}

// Apply pushes one update through the pipeline. When the update's plan
// needs remote data that cannot be fetched, it returns an error
// matching ErrSiteUnavailable and the database is untouched; updates
// decidable from local information commit regardless of site health.
func (co *Coordinator) Apply(u store.Update) (core.Report, error) {
	co.applyGen.Add(1)
	co.statsMu.Lock()
	co.stats.Updates++
	co.statsMu.Unlock()

	// Decide what the global phase would need before touching anything.
	plan := co.Checker.Plan(u)
	needed, err := co.refreshForUpdate(u, plan.Relations)
	if err != nil {
		co.noteUnavailable(err)
		return core.Report{Update: u}, fmt.Errorf("update %s: %w", u, err)
	}
	// While the checker holds the trial state for u, the router must not
	// intercept reads of u's relation: the mirror is the authoritative
	// post-update view (the scheduler keeps other updates off u's shards).
	if co.router != nil {
		co.router.addPending(u.Relation)
	}
	rep, err := co.Checker.Apply(u)
	if co.router != nil {
		co.router.removePending(u.Relation)
	}
	if err != nil {
		if errors.Is(err, ErrSiteUnavailable) {
			// A routed evaluation probe failed; the checker rolled the
			// trial state back, so the update is refused, not misjudged.
			co.noteUnavailable(err)
			return core.Report{Update: u}, fmt.Errorf("update %s: %w", u, err)
		}
		return rep, err
	}
	// Propagate an applied update on a remote relation to its owning
	// shard leader; if the leader is unreachable the local application is
	// undone — the sites never diverge from the mirror over a failure.
	propagated := false
	if _, remote := co.place[u.Relation]; remote && rep.Applied {
		propagated = true
		if err := co.propagate(u); err != nil {
			co.undoMirror(u)
			co.noteUnavailable(err)
			return core.Report{Update: u}, fmt.Errorf("update %s: propagate: %w", u, err)
		}
	}
	co.statsMu.Lock()
	for _, d := range rep.Decisions {
		co.stats.ByPhase[d.Phase]++
	}
	if !rep.Applied {
		co.stats.Rejected++
	}
	// Wire-free iff no remote relation needed a refresh and nothing was
	// propagated; computed directly because the old round-trip-delta
	// comparison misattributes other updates' traffic under concurrent
	// appliers.
	if needed == 0 && !propagated {
		co.stats.DecidedLocally++
	}
	co.statsMu.Unlock()
	return rep, nil
}

// propagate applies u on its owning shard leader and feeds the shard's
// replicas; unpropagate routes the inverse (rollback paths).
func (co *Coordinator) propagate(u store.Update) error {
	ss := co.shardFor(u.Relation, u.Tuple)
	if ss == nil {
		return nil
	}
	if _, err := co.call(ss.leader, &Request{
		Type:     OpApply,
		Relation: u.Relation,
		Insert:   u.Insert,
		Tuple:    EncodeTuple(u.Tuple),
	}); err != nil {
		return err
	}
	co.afterPropagate(ss, u)
	return nil
}

func (co *Coordinator) unpropagate(u store.Update) error {
	return co.propagate(store.Update{Relation: u.Relation, Insert: !u.Insert, Tuple: u.Tuple})
}

// Check decides one update without committing anything: the remote
// relations its plan needs are refreshed, then the checker decides and
// exactly undoes its trial application (core.Checker.Check). Nothing is
// propagated, so the sites are untouched whatever the verdict.
func (co *Coordinator) Check(u store.Update) (core.Report, error) {
	co.applyGen.Add(1)
	co.statsMu.Lock()
	co.stats.Updates++
	co.statsMu.Unlock()
	plan := co.Checker.Plan(u)
	needed, err := co.refreshForUpdate(u, plan.Relations)
	if err != nil {
		co.noteUnavailable(err)
		return core.Report{Update: u}, fmt.Errorf("update %s: %w", u, err)
	}
	if co.router != nil {
		co.router.addPending(u.Relation)
	}
	rep, err := co.Checker.Check(u)
	if co.router != nil {
		co.router.removePending(u.Relation)
	}
	if err != nil {
		if errors.Is(err, ErrSiteUnavailable) {
			co.noteUnavailable(err)
			return core.Report{Update: u}, fmt.Errorf("update %s: %w", u, err)
		}
		return rep, err
	}
	co.statsMu.Lock()
	for _, d := range rep.Decisions {
		co.stats.ByPhase[d.Phase]++
	}
	if needed == 0 {
		co.stats.DecidedLocally++
	}
	co.statsMu.Unlock()
	return rep, nil
}

// ServeBackend adapts a Coordinator to internal/serve's Backend surface
// (satisfied structurally — serve is not imported), so a decision server
// can front a multi-site system. It is an adapter rather than methods on
// Coordinator because the backend's Stats() must return the checker's
// core.Stats while Coordinator.Stats() reports wire accounting.
type ServeBackend struct{ Co *Coordinator }

// Check decides without applying (Coordinator.Check).
func (b ServeBackend) Check(u store.Update) (core.Report, error) { return b.Co.Check(u) }

// Apply decides and, when admitted, applies and propagates.
func (b ServeBackend) Apply(u store.Update) (core.Report, error) { return b.Co.Apply(u) }

// ApplyBatch applies the updates as one atomic transaction.
func (b ServeBackend) ApplyBatch(us []store.Update) (core.BatchReport, error) {
	return b.Co.ApplyBatch(us)
}

// Stats snapshots the wrapped checker's statistics.
func (b ServeBackend) Stats() core.Stats { return b.Co.Checker.Stats() }

// Footprints exposes the wrapped checker's conflict-footprint index so a
// pipelined server (serve.Config.ApplyWorkers > 1) can schedule
// coordinator applies concurrently. The coordinator side is safe for
// that discipline: its accounting is mutex-guarded and its transports
// tolerate concurrent round trips.
func (b ServeBackend) Footprints() *sched.Index { return b.Co.Checker.Footprints() }

// ConcurrentApplySafe defers to the wrapped checker.
func (b ServeBackend) ConcurrentApplySafe() bool { return b.Co.Checker.ConcurrentApplySafe() }

// ShardStats satisfies serve's optional ShardStatser interface: the
// coordinator's scale-out wire accounting, surfaced through the
// decision server's /stats.
func (b ServeBackend) ShardStats() (routed, scatter, replicaReads int) {
	st := b.Co.Stats()
	return st.ShardRouted, st.ShardScatter, st.ReplicaReads
}

// noteUnavailable accounts one update refused because a site was
// unreachable, attributing it to the offending site when the error chain
// names one. A RemoteError (site answered, refused) lands here only from
// refresh's decode path and counts site-less.
func (co *Coordinator) noteUnavailable(err error) {
	co.statsMu.Lock()
	co.stats.Unavailable++
	var se *SiteError
	if errors.As(err, &se) {
		co.stats.UnavailableBySite[se.Site]++
	}
	co.statsMu.Unlock()
	if co.met != nil {
		co.met.unavailable.Inc()
	}
}

// undoMirror reverts an applied update on the mirror at store level
// (used when remote propagation fails after local commit).
func (co *Coordinator) undoMirror(u store.Update) {
	if u.Insert {
		co.mirror.Delete(u.Relation, u.Tuple)
	} else {
		if _, err := co.mirror.Insert(u.Relation, u.Tuple); err != nil {
			panic(fmt.Sprintf("netdist: mirror undo failed: %v", err))
		}
	}
}

// ApplyBatch applies the updates as one atomic transaction, mirroring
// core.Checker.ApplyBatch: on the first rejection or error every
// already-applied update is undone locally and, for remote relations,
// un-propagated. FailedAt reports the offending index on rejection.
// With Options.ApplyWorkers > 1 the batch runs on the pipelined path
// (see applyBatchPipelined): same verdicts, same final state, same
// batch atomicity — overlapping wire waits of independent updates.
func (co *Coordinator) ApplyBatch(updates []store.Update) (core.BatchReport, error) {
	if co.opts.ApplyWorkers > 1 && co.Checker.ConcurrentApplySafe() {
		return co.applyBatchPipelined(updates, co.opts.ApplyWorkers)
	}
	br := core.BatchReport{Applied: true, FailedAt: -1}
	type undo struct {
		u       store.Update
		changed bool
	}
	var undos []undo
	rollback := func() error {
		for i := len(undos) - 1; i >= 0; i-- {
			if !undos[i].changed {
				continue
			}
			u := undos[i].u
			co.undoMirror(u)
			if _, remote := co.place[u.Relation]; remote {
				if err := co.unpropagate(u); err != nil {
					return fmt.Errorf("netdist: batch rollback of %s: %w", u, err)
				}
			}
		}
		return nil
	}
	for i, u := range updates {
		changes := co.mirror.Contains(u.Relation, u.Tuple) != u.Insert
		rep, err := co.Apply(u)
		if err != nil {
			if rbErr := rollback(); rbErr != nil {
				return br, rbErr
			}
			return br, err
		}
		br.Reports = append(br.Reports, rep)
		if !rep.Applied {
			br.Applied = false
			br.FailedAt = i
			if err := rollback(); err != nil {
				return br, err
			}
			return br, nil
		}
		undos = append(undos, undo{u: u, changed: changes})
	}
	return br, nil
}

// Report renders the statistics as a small table, the measured
// counterpart of dist.System.Report.
func (co *Coordinator) Report() string {
	st := co.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "updates: %d  rejected: %d  unavailable: %d  decided-locally: %d\n",
		st.Updates, st.Rejected, st.Unavailable, st.DecidedLocally)
	fmt.Fprintf(&sb, "wire: %d round trips (%d retries), %d tuples, %s on the network\n",
		st.RoundTrips, st.Retries, st.WireTuples, st.NetTime.Round(time.Microsecond))
	if st.ShardRouted+st.ShardScatter+st.ReplicaReads+st.ReplicaResyncs > 0 {
		fmt.Fprintf(&sb, "shards: %d routed (%d key fetches), %d scatter; replicas: %d reads, %d resyncs\n",
			st.ShardRouted, st.KeyFetches, st.ShardScatter, st.ReplicaReads, st.ReplicaResyncs)
	}
	if len(st.RetriesBySite) > 0 {
		fmt.Fprintf(&sb, "retries by site: %s\n", siteCounts(st.RetriesBySite))
	}
	if len(st.UnavailableBySite) > 0 {
		fmt.Fprintf(&sb, "degraded sites: %s\n", siteCounts(st.UnavailableBySite))
	}
	var phases []core.Phase
	for p := range st.ByPhase {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		fmt.Fprintf(&sb, "  decided by %-12s %d\n", p.String()+":", st.ByPhase[p])
	}
	return sb.String()
}

// siteCounts renders a per-site counter map as "site=count" pairs in
// site order.
func siteCounts(m map[string]int) string {
	sites := make([]string, 0, len(m))
	for s := range m {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = fmt.Sprintf("%s=%d", s, m[s])
	}
	return strings.Join(parts, "  ")
}
