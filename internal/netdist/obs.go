package netdist

import (
	"encoding/json"
	"time"

	"repro/internal/obs"
)

// This file holds the wire-level instrumentation for both ends of the
// protocol. Metrics are strictly optional: with no registry attached the
// hot paths skip every clock read and size computation. Metric names are
// documented in DESIGN.md ("Observability").

// frameBytes returns the on-wire size of one frame carrying v: the JSON
// body plus the 4-byte length prefix. Only called when metrics are
// enabled; an unencodable value counts as header-only (the frame codec
// would have failed the request anyway).
func frameBytes(v any) int {
	body, err := json.Marshal(v)
	if err != nil {
		return 4
	}
	return 4 + len(body)
}

// coordMetrics holds the coordinator-side registry handles.
type coordMetrics struct {
	rpcSeconds  *obs.HistogramVec // op
	rpcTotal    *obs.CounterVec   // site, op
	rpcErrors   *obs.CounterVec   // site
	retries     *obs.CounterVec   // site
	unavailable *obs.Counter
	wireTuples  *obs.Counter
	bytesOut    *obs.Counter
	bytesIn     *obs.Counter
}

func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	return &coordMetrics{
		rpcSeconds:  reg.HistogramVec("cc_coord_rpc_seconds", "round-trip latency per operation", nil, "op"),
		rpcTotal:    reg.CounterVec("cc_coord_rpc_total", "completed round trips (response received)", "site", "op"),
		rpcErrors:   reg.CounterVec("cc_coord_rpc_errors_total", "transport-failed attempts", "site"),
		retries:     reg.CounterVec("cc_coord_retries_total", "re-attempts after a transport failure", "site"),
		unavailable: reg.Counter("cc_coord_unavailable_total", "updates refused because a needed site was unreachable"),
		wireTuples:  reg.Counter("cc_coord_wire_tuples_total", "tuples shipped back over the wire"),
		bytesOut:    reg.Counter("cc_coord_bytes_sent_total", "request frame bytes written"),
		bytesIn:     reg.Counter("cc_coord_bytes_recv_total", "response frame bytes read"),
	}
}

// observeAttempt accounts one transport attempt: latency and frame sizes
// always, the outcome counter by whether a response arrived.
func (m *coordMetrics) observeAttempt(site, op string, req *Request, resp *Response, err error, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.rpcSeconds.With(op).Observe(elapsed.Seconds())
	m.bytesOut.Add(int64(frameBytes(req)))
	if err != nil {
		m.rpcErrors.With(site).Inc()
		return
	}
	m.rpcTotal.With(site, op).Inc()
	m.bytesIn.Add(int64(frameBytes(resp)))
	m.wireTuples.Add(int64(len(resp.Tuples)))
}

// shardMetrics holds the sharding/replication registry handles. Only
// attached when the placement actually shards or replicates something,
// so whole-relation deployments expose exactly the pre-placement metric
// set.
type shardMetrics struct {
	routed       *obs.Counter
	scatter      *obs.Counter
	keyFetches   *obs.Counter
	replicaReads *obs.Counter
	replicaOps   *obs.Counter
	staleness    *obs.Gauge
}

func newShardMetrics(reg *obs.Registry) *shardMetrics {
	return &shardMetrics{
		routed:       reg.Counter("cc_shard_routed_total", "probes answered by the single owning shard"),
		scatter:      reg.Counter("cc_shard_scatter_total", "probes scatter-gathered across every shard"),
		keyFetches:   reg.Counter("cc_shard_key_fetch_total", "single-key group fetches sent to owning shards"),
		replicaReads: reg.Counter("cc_shard_replica_reads_total", "shard reads served by a fresh replica instead of the leader"),
		replicaOps:   reg.Counter("cc_shard_replica_ops_total", "replication feed operations applied (writes + resyncs)"),
		staleness:    reg.Gauge("cc_shard_replica_staleness", "worst replica lag in apply sequence numbers at the last propagated write"),
	}
}

// serverMetrics holds the site-side registry handles. They are bumped in
// Server.Handle from the same values as ServerStats, so the /metrics
// exposition always sums to the shutdown accounting report.
type serverMetrics struct {
	requests   *obs.CounterVec   // op
	seconds    *obs.HistogramVec // op
	tuplesSent *obs.CounterVec   // relation
	errors     *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
}

// Instrument attaches a metrics registry to the server. Call before
// serving; the handles are written concurrently by connection goroutines
// (the registry primitives are internally synchronized) but the pointer
// itself is set once.
func (s *Server) Instrument(reg *obs.Registry) {
	s.met = &serverMetrics{
		requests:   reg.CounterVec("cc_site_requests_total", "frames handled per request type", "op"),
		seconds:    reg.HistogramVec("cc_site_request_seconds", "handling latency per request type", nil, "op"),
		tuplesSent: reg.CounterVec("cc_site_tuples_sent_total", "tuples shipped per relation (scan + fetch)", "relation"),
		errors:     reg.Counter("cc_site_errors_total", "requests answered with ok=false"),
		bytesIn:    reg.Counter("cc_site_bytes_recv_total", "request frame bytes read"),
		bytesOut:   reg.Counter("cc_site_bytes_sent_total", "response frame bytes written"),
	}
}

// observe accounts one handled request against the attached registry.
func (m *serverMetrics) observe(req *Request, resp *Response, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.requests.With(req.Type).Inc()
	m.seconds.With(req.Type).Observe(elapsed.Seconds())
	if !resp.OK {
		m.errors.Inc()
	}
	if len(resp.Tuples) > 0 && req.Relation != "" {
		m.tuplesSent.With(req.Relation).Add(int64(len(resp.Tuples)))
	}
	m.bytesIn.Add(int64(frameBytes(req)))
	m.bytesOut.Add(int64(frameBytes(resp)))
}
