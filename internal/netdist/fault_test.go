package netdist

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
)

// faultFixture: local relation l (intervals), remote relation r on one
// loopback site, the forbidden-interval constraint. Local coverage
// certifies inserts inside [20,30]; anything else needs the global
// phase and therefore the site.
func faultFixture(t *testing.T, retries int) (*Coordinator, *Loopback, *store.Store) {
	t.Helper()
	remote := store.New()
	if _, err := remote.Insert("r", relation.Ints(10000)); err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	lb.AddSite("s1", NewServer(remote, []string{"r"}))
	local := store.New()
	if _, err := local.Insert("l", relation.Ints(20, 30)); err != nil {
		t.Fatal(err)
	}
	co, err := New(local, []SiteSpec{{Site: "s1", Relations: []string{"r"}}}, lb, Options{
		Checker: core.Options{LocalRelations: []string{"l"}},
		Timeout: 50 * time.Millisecond,
		Retries: retries,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return co, lb, remote
}

func TestPartitionFailsOnlyGlobalUpdates(t *testing.T) {
	co, lb, _ := faultFixture(t, -1)
	lb.Partition("s1")

	// Covered by local data: decides in phase 3, needs no site, commits.
	rep, err := co.Apply(store.Ins("l", relation.Ints(22, 28)))
	if err != nil || !rep.Applied {
		t.Fatalf("locally-decidable update failed under partition: rep=%+v err=%v", rep, err)
	}
	// Outside local coverage: needs the site, must fail loudly — not
	// crash, not report a verdict.
	rep, err = co.Apply(store.Ins("l", relation.Ints(100, 200)))
	if !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("global update under partition: err=%v", err)
	}
	if len(rep.Decisions) != 0 || rep.Applied {
		t.Errorf("failed update carries a verdict: %+v", rep)
	}
	if co.Checker.DB().Contains("l", relation.Ints(100, 200)) {
		t.Error("failed update mutated the store")
	}

	// Heal: the same update now decides.
	lb.Heal("s1")
	rep, err = co.Apply(store.Ins("l", relation.Ints(100, 200)))
	if err != nil || !rep.Applied {
		t.Fatalf("update after heal: rep=%+v err=%v", rep, err)
	}

	st := co.Stats()
	if st.Unavailable != 1 {
		t.Errorf("Unavailable = %d, want 1", st.Unavailable)
	}
	if st.Updates != 3 {
		t.Errorf("Updates = %d, want 3", st.Updates)
	}
}

func TestRetriesRecoverFromTransientDrops(t *testing.T) {
	co, lb, _ := faultFixture(t, 3)
	// Two dropped frames, then delivery: the third attempt succeeds.
	lb.DropNext("s1", 2)
	rep, err := co.Apply(store.Ins("l", relation.Ints(100, 200)))
	if err != nil || !rep.Applied {
		t.Fatalf("update with transient drops: rep=%+v err=%v", rep, err)
	}
	st := co.Stats()
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	if st.RoundTrips != 1 {
		t.Errorf("RoundTrips = %d, want 1 (only the delivered attempt)", st.RoundTrips)
	}

	// More consecutive failures than retries: the update fails.
	lb.FailNext("s1", 10)
	if _, err := co.Apply(store.Ins("l", relation.Ints(300, 400))); !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("update beyond retry budget: err=%v", err)
	}
}

func TestLatencyBeyondDeadlineTimesOut(t *testing.T) {
	co, lb, _ := faultFixture(t, -1)
	lb.SetLatency("s1", 200*time.Millisecond) // > the 50ms deadline
	start := time.Now()
	_, err := co.Apply(store.Ins("l", relation.Ints(100, 200)))
	if !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("latency beyond deadline: err=%v", err)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Errorf("timed-out update burned %v of wall clock", el)
	}
	// Within the deadline the update goes through, and the coordinator's
	// NetTime sees the injected latency.
	lb.SetLatency("s1", 5*time.Millisecond)
	if rep, err := co.Apply(store.Ins("l", relation.Ints(100, 200))); err != nil || !rep.Applied {
		t.Fatalf("update under tolerable latency: rep=%+v err=%v", rep, err)
	}
	if st := co.Stats(); st.NetTime < 5*time.Millisecond {
		t.Errorf("NetTime = %v, want at least the injected 5ms", st.NetTime)
	}
}

func TestPropagationFailureUndoesLocalWrite(t *testing.T) {
	remote := store.New()
	if _, err := remote.Insert("dept", relation.Strs("toy")); err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	lb.AddSite("s1", NewServer(remote, []string{"dept"}))
	co, err := New(store.New(), []SiteSpec{{Site: "s1", Relations: []string{"dept"}}}, lb,
		Options{Retries: -1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lb.Partition("s1")
	// No constraint mentions dept, so the update decides locally — but
	// it writes a remote relation and propagation fails: the mirror must
	// be restored and the error must mark the site.
	_, err = co.Apply(store.Ins("dept", relation.Strs("shoe")))
	if !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("propagation under partition: err=%v", err)
	}
	if co.Checker.DB().Contains("dept", relation.Strs("shoe")) {
		t.Error("mirror kept a write the owning site never saw")
	}
	if remote.Contains("dept", relation.Strs("shoe")) {
		t.Error("partitioned site saw the write")
	}
}
