package netdist

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/store"
)

// This file is the coordinator's pipelined arm: ApplyStream and the
// ApplyWorkers > 1 path of ApplyBatch push updates through the
// conflict-aware scheduler (internal/sched) so that independent updates
// overlap their phase-1–3 checks and site RPCs — the wire wait of one
// update hides behind the local work and wire waits of others — while
// conflicting updates keep strict admission order. Verdicts and the
// final global state are identical to the sequential arm; only the
// interleaving of independent updates (and therefore throughput under
// latency) changes.

// StreamResult pairs one streamed update's report and error.
type StreamResult struct {
	Report core.Report
	Err    error
}

// ApplyStream applies a stream of independently-fated updates — the
// concurrent counterpart of a sequential loop of Apply calls, with no
// batch atomicity: a rejected or failed update rolls back alone and the
// rest proceed. workers <= 1 (or a checker that refuses concurrent
// applies) runs the plain loop; otherwise the scheduler dispatches
// non-conflicting updates to a worker pool and serializes conflicting
// ones in admission order, so per-update verdicts and the final state
// match the sequential loop exactly.
func (co *Coordinator) ApplyStream(updates []store.Update, workers int) []StreamResult {
	out := make([]StreamResult, len(updates))
	if workers <= 1 || !co.Checker.ConcurrentApplySafe() {
		for i, u := range updates {
			out[i].Report, out[i].Err = co.Apply(u)
		}
		return out
	}
	s := sched.New(sched.Options{Workers: workers, Metrics: sched.NewMetrics(co.opts.Metrics, "netdist")})
	ix := co.Checker.Footprints()
	for i, u := range updates {
		i, u := i, u
		s.Submit(ix.Update(u), func(sched.Info) {
			out[i].Report, out[i].Err = co.Apply(u)
		})
	}
	s.Close()
	return out
}

// applyBatchPipelined is ApplyBatch on the scheduler: every update runs
// as one task (conflicting tasks in admission order), and the batch
// stays atomic — any rejection or error rolls back every applied update,
// locally and at its owning site, in reverse completion order.
//
// Equivalence to the sequential path: updates before the first bad index
// see exactly the sequential verdicts (conflict-serializability in
// admission order), so the first rejection lands at the same index with
// the same reports. The one divergence mirrors serve's non-atomic batch:
// updates past the failure have already been dispatched here — but they
// are rolled back with everything else, so the committed outcome is
// bit-identical to the sequential arm's.
func (co *Coordinator) applyBatchPipelined(updates []store.Update, workers int) (core.BatchReport, error) {
	br := core.BatchReport{Applied: true, FailedAt: -1}
	n := len(updates)
	if n == 0 {
		return br, nil
	}
	reports := make([]core.Report, n)
	errs := make([]error, n)
	type applied struct {
		idx     int
		changed bool
	}
	var mu sync.Mutex
	var done []applied // completion order of successful applies
	s := sched.New(sched.Options{Workers: workers, Metrics: sched.NewMetrics(co.opts.Metrics, "netdist")})
	ix := co.Checker.Footprints()
	for i, u := range updates {
		i, u := i, u
		s.Submit(ix.Update(u), func(sched.Info) {
			// Same-fingerprint writers are serialized by the scheduler, so
			// the membership probe cannot interleave with a conflicting
			// apply.
			changes := co.mirror.Contains(u.Relation, u.Tuple) != u.Insert
			reports[i], errs[i] = co.Apply(u)
			if errs[i] == nil && reports[i].Applied {
				mu.Lock()
				done = append(done, applied{i, changes})
				mu.Unlock()
			}
		})
	}
	s.Close()

	bad := -1
	for i := 0; i < n; i++ {
		if errs[i] != nil || !reports[i].Applied {
			bad = i
			break
		}
	}
	if bad < 0 {
		br.Reports = reports
		return br, nil
	}
	for k := len(done) - 1; k >= 0; k-- {
		if !done[k].changed {
			continue
		}
		u := updates[done[k].idx]
		co.undoMirror(u)
		if _, remote := co.place[u.Relation]; remote {
			if err := co.unpropagate(u); err != nil {
				return br, fmt.Errorf("netdist: batch rollback of %s: %w", u, err)
			}
		}
	}
	if errs[bad] != nil {
		br.Reports = reports[:bad]
		return br, errs[bad]
	}
	br.Applied = false
	br.FailedAt = bad
	br.Reports = reports[:bad+1]
	return br, nil
}
