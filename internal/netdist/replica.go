package netdist

import (
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/store"
)

// shardState is the coordinator-side view of one shard of a placed
// relation: its leader site, the apply sequence number (bumped on every
// write propagated to the leader), and the shard's read replicas.
type shardState struct {
	rel    string
	idx    int
	leader string
	// seq counts writes propagated to this shard's leader. A replica
	// whose watermark has reached seq has applied every propagated write
	// and may serve reads in the leader's stead.
	seq atomic.Int64
	// rr is the round-robin cursor over read targets (replicas + leader).
	rr       atomic.Int64
	replicas []*replicaState
}

// replicaState tracks one read replica's freshness. The watermark is the
// apply sequence number the replica is known to have caught up to; stale
// marks a replica whose feed broke (a propagation failed), forcing a
// full resync before it serves reads again.
type replicaState struct {
	site      string
	watermark atomic.Int64

	mu       sync.Mutex
	stale    bool
	queue    []replicaOp
	draining bool
}

// replicaOp is one queued replication action: an incremental write at a
// known sequence number, or a full resync from the leader.
type replicaOp struct {
	resync bool
	u      store.Update
	seq    int64
}

// shardFor returns the shard state owning the tuple, or nil when the
// relation is not remotely placed.
func (co *Coordinator) shardFor(rel string, t relation.Tuple) *shardState {
	shards, ok := co.shardsOf[rel]
	if !ok {
		return nil
	}
	pl := co.place[rel]
	if pl.Sharded() && pl.KeyCol < len(t) {
		return shards[co.place.ShardOf(rel, t[pl.KeyCol])]
	}
	return shards[0]
}

// afterPropagate records one write that reached the shard leader: the
// apply sequence advances and the write is queued to every replica.
// Replication is asynchronous — the caller does not wait — so replicas
// trail the leader; the watermark is what keeps reads correct.
func (co *Coordinator) afterPropagate(ss *shardState, u store.Update) {
	seq := ss.seq.Add(1)
	if len(ss.replicas) == 0 {
		return
	}
	maxLag := int64(0)
	for _, rs := range ss.replicas {
		co.enqueueReplica(ss, rs, replicaOp{u: u, seq: seq})
		if lag := seq - rs.watermark.Load(); lag > maxLag {
			maxLag = lag
		}
	}
	if co.shmet != nil {
		co.shmet.staleness.Set(maxLag)
	}
}

// enqueueReplica appends one op to the replica's FIFO feed, prefixing a
// resync when the feed previously broke, and spawns the drain goroutine
// if none is running.
func (co *Coordinator) enqueueReplica(ss *shardState, rs *replicaState, op replicaOp) {
	rs.mu.Lock()
	if rs.stale {
		rs.stale = false
		rs.queue = append(rs.queue[:0], replicaOp{resync: true})
		co.replWG.Add(1)
	}
	rs.queue = append(rs.queue, op)
	co.replWG.Add(1)
	if !rs.draining {
		rs.draining = true
		go co.drainReplica(ss, rs)
	}
	rs.mu.Unlock()
}

// drainReplica applies the replica's queued ops in order. The first
// failure marks the replica stale and drops the rest of the queue — the
// next write will queue a resync, which rebuilds the replica from a
// leader scan.
func (co *Coordinator) drainReplica(ss *shardState, rs *replicaState) {
	for {
		rs.mu.Lock()
		if len(rs.queue) == 0 {
			rs.draining = false
			rs.mu.Unlock()
			return
		}
		op := rs.queue[0]
		rs.queue = rs.queue[1:]
		rs.mu.Unlock()

		var err error
		if op.resync {
			err = co.resyncReplica(ss, rs)
		} else {
			_, err = co.replicaCall(rs.site, &Request{
				Type:     OpApply,
				Relation: ss.rel,
				Insert:   op.u.Insert,
				Tuple:    EncodeTuple(op.u.Tuple),
			})
			if err == nil {
				rs.watermark.Store(op.seq)
			}
		}
		if co.shmet != nil && err == nil {
			co.shmet.replicaOps.Inc()
		}
		if err != nil {
			rs.mu.Lock()
			rs.stale = true
			for range rs.queue {
				co.replWG.Done()
			}
			rs.queue = nil
			rs.mu.Unlock()
		}
		co.replWG.Done()
	}
}

// resyncReplica rebuilds the replica from a full leader scan. The
// watermark is the sequence number read BEFORE the scan: any write
// propagated after that point may or may not be in the scanned state, so
// claiming only the pre-scan sequence keeps the watermark a sound lower
// bound (replicas may be fresher than they claim, never staler).
func (co *Coordinator) resyncReplica(ss *shardState, rs *replicaState) error {
	seq := ss.seq.Load()
	resp, err := co.replicaCall(ss.leader, &Request{Type: OpScan, Relation: ss.rel})
	if err != nil {
		return err
	}
	if _, err := co.replicaCall(rs.site, &Request{
		Type:     OpReplace,
		Relation: ss.rel,
		Arity:    resp.Arity,
		Tuples:   resp.Tuples,
	}); err != nil {
		return err
	}
	rs.watermark.Store(seq)
	co.statsMu.Lock()
	co.stats.ReplicaResyncs++
	co.statsMu.Unlock()
	return nil
}

// replicaCall is the replication feed's round trip: direct transport
// with one retry, outside the coordinator's per-update span/stats
// machinery (replication is asynchronous background traffic, not part of
// any update's decision cost).
func (co *Coordinator) replicaCall(site string, req *Request) (*Response, error) {
	req.ID = co.reqID.Add(1)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		resp, err := co.transport.RoundTrip(site, req, co.opts.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK {
			return nil, &RemoteError{Site: site, Msg: resp.Err}
		}
		return resp, nil
	}
	return nil, &SiteError{Site: site, Err: lastErr}
}

// FlushReplicas blocks until every queued replication op has been
// applied or dropped. Tests and orderly shutdown use it; normal
// operation never waits on replicas.
func (co *Coordinator) FlushReplicas() { co.replWG.Wait() }

// readTarget picks the site to read this shard from: round-robin over
// the replicas whose watermark covers every propagated write, with the
// leader taking the slot after the replicas (and serving alone when no
// replica is fresh).
func (co *Coordinator) readTarget(ss *shardState) string {
	if len(ss.replicas) == 0 {
		return ss.leader
	}
	need := ss.seq.Load()
	n := len(ss.replicas) + 1
	start := int(ss.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if idx == len(ss.replicas) {
			return ss.leader
		}
		rs := ss.replicas[idx]
		if rs.watermark.Load() >= need {
			co.statsMu.Lock()
			co.stats.ReplicaReads++
			co.statsMu.Unlock()
			if co.shmet != nil {
				co.shmet.replicaReads.Inc()
			}
			return rs.site
		}
	}
	return ss.leader
}
