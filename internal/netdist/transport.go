package netdist

import "time"

// Transport carries one request to a named site and returns its
// response. Implementations must be safe for concurrent use.
//
// The contract the coordinator's retry loop relies on:
//   - a non-nil error means the request may not have reached the site
//     (dial failure, timeout, partition) — retryable;
//   - a response with OK=false means the site answered and refused —
//     a *RemoteError, not retryable;
//   - timeout bounds the whole round trip.
type Transport interface {
	RoundTrip(site string, req *Request, timeout time.Duration) (*Response, error)
	Close() error
}
