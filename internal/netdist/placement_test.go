package netdist

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
)

func TestParseShardSpec(t *testing.T) {
	rel, rp, err := ParseShardSpec("dept@0=s0, s1,s2")
	if err != nil {
		t.Fatal(err)
	}
	if rel != "dept" || rp.KeyCol != 0 || len(rp.Shards) != 3 || rp.Shards[1].Leader != "s1" {
		t.Fatalf("parsed %q %+v", rel, rp)
	}
	if !rp.Sharded() {
		t.Fatal("three shards must report Sharded")
	}
	for _, bad := range []string{"dept=s0", "dept@x=s0", "@0=s0", "dept@0=", "dept@0=s0,,s1", "dept@-1=s0"} {
		if _, _, err := ParseShardSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestParseReplicaSpec(t *testing.T) {
	rel, shard, site, err := ParseReplicaSpec("dept/1 = s9")
	if err != nil {
		t.Fatal(err)
	}
	if rel != "dept" || shard != 1 || site != "s9" {
		t.Fatalf("parsed %q %d %q", rel, shard, site)
	}
	for _, bad := range []string{"dept=s9", "dept/x=s9", "/1=s9", "dept/1=", "dept/-1=s9"} {
		if _, _, _, err := ParseReplicaSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestPlacementValidate(t *testing.T) {
	lb := NewLoopback()
	for name, place := range map[string]Placement{
		"no shards":   {"dept": {KeyCol: 0}},
		"no key col":  {"dept": {KeyCol: -1, Shards: []ShardSpec{{Leader: "a"}, {Leader: "b"}}}},
		"dup site":    {"dept": {KeyCol: 0, Shards: []ShardSpec{{Leader: "a"}, {Leader: "a"}}}},
		"dup replica": {"dept": {KeyCol: 0, Shards: []ShardSpec{{Leader: "a", Replicas: []string{"b"}}, {Leader: "b"}}}},
		"no leader":   {"dept": {KeyCol: 0, Shards: []ShardSpec{{Replicas: []string{"b"}}}}},
	} {
		if _, err := NewPlaced(store.New(), place, lb, Options{}); err == nil {
			t.Errorf("%s: want NewPlaced to refuse", name)
		}
	}
}

// shardArm describes one deployment shape of the same logical database
// for the oracle test.
type shardArm struct {
	name     string
	shards   int  // dept and r shard count (1 = whole-relation single site)
	replicas bool // one read replica per shard
	scatter  bool // DisableShardRouting
}

// buildShardedArm deploys emp and l at the coordinator and dept and r
// across `shards` loopback sites, hash-partitioned by column 0 when
// shards > 1, seeding every store identically across arms. Returns the
// coordinator, the transport, and the per-site leader stores.
func buildShardedArm(t *testing.T, arm shardArm) (*Coordinator, *Loopback, map[string]*store.Store) {
	t.Helper()
	sites := make([]string, arm.shards)
	for i := range sites {
		sites[i] = fmt.Sprintf("s%d", i)
	}
	place := Placement{}
	for _, rel := range []string{"dept", "r"} {
		rp := RelPlacement{KeyCol: 0}
		for i, site := range sites {
			sh := ShardSpec{Leader: site}
			if arm.replicas {
				sh.Replicas = []string{fmt.Sprintf("%s-%s-replica", rel, sites[i])}
			}
			rp.Shards = append(rp.Shards, sh)
		}
		place[rel] = rp
	}

	leaders := map[string]*store.Store{}
	lb := NewLoopback()
	for _, site := range sites {
		db := store.New()
		leaders[site] = db
		lb.AddSite(site, NewServer(db, []string{"dept", "r"}))
	}
	for rel, rp := range place {
		for _, sh := range rp.Shards {
			for _, replica := range sh.Replicas {
				srv := NewServer(store.New(), []string{rel})
				srv.SetRole("replica")
				lb.AddSite(replica, srv)
			}
		}
	}

	// Identical seed data in every arm: dept keys 0..29, r points, each
	// tuple landed on its owning shard.
	seed := func(rel string, tuples []relation.Tuple) {
		rp := place[rel]
		for _, tp := range tuples {
			site := rp.Shards[0].Leader
			if rp.Sharded() {
				site = rp.Shards[place.ShardOf(rel, tp[0])].Leader
			}
			if _, err := leaders[site].Insert(rel, tp); err != nil {
				t.Fatal(err)
			}
		}
	}
	var deptSeed, rSeed []relation.Tuple
	for k := int64(0); k < 30; k++ {
		deptSeed = append(deptSeed, relation.Ints(k))
	}
	for _, p := range []int64{15, 35, 60} {
		rSeed = append(rSeed, relation.Ints(p))
	}
	seed("dept", deptSeed)
	seed("r", rSeed)

	local := store.New()
	for i := int64(0); i < 10; i++ {
		if _, err := local.Insert("emp", relation.Ints(1000+i, i%30)); err != nil {
			t.Fatal(err)
		}
	}
	for _, iv := range [][2]int64{{0, 10}, {20, 30}, {40, 50}} {
		if _, err := local.Insert("l", relation.Ints(iv[0], iv[1])); err != nil {
			t.Fatal(err)
		}
	}

	co, err := NewPlaced(local, place, lb, Options{
		Checker:             core.Options{LocalRelations: []string{"emp", "l"}},
		Timeout:             time.Second,
		Backoff:             time.Millisecond,
		DisableShardRouting: arm.scatter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("ref", "panic :- emp(E, D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("fi", "panic :- l(X, Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return co, lb, leaders
}

// dumpGlobal renders the union of the leader stores plus the
// coordinator's local relations, deterministically: what the whole
// system holds, independent of how it is partitioned.
func dumpGlobal(co *Coordinator, leaders map[string]*store.Store) string {
	tuples := map[string][]string{}
	add := func(db *store.Store, only func(string) bool) {
		for _, name := range db.Names() {
			if !only(name) {
				continue
			}
			for _, tp := range db.Tuples(name) {
				tuples[name] = append(tuples[name], tp.String())
			}
		}
	}
	for _, db := range leaders {
		add(db, func(string) bool { return true })
	}
	add(co.Checker.DB(), func(rel string) bool { _, remote := co.place[rel]; return !remote })
	rels := make([]string, 0, len(tuples))
	for rel := range tuples {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	var b strings.Builder
	for _, rel := range rels {
		sort.Strings(tuples[rel])
		fmt.Fprintf(&b, "%s: %s\n", rel, strings.Join(tuples[rel], " "))
	}
	return b.String()
}

// shardStream mixes referential (emp/dept) and interval (l/r) traffic,
// inserts and deletes, over a band small enough that rejections — emp
// referencing a missing dept, dept deletes stranding emps, intervals
// capturing r points — are common.
func shardStream(seed int64, n int) []store.Update {
	rng := rand.New(rand.NewSource(seed))
	us := make([]store.Update, n)
	for i := range us {
		switch rng.Intn(4) {
		case 0:
			u := store.Ins("emp", relation.Ints(int64(rng.Intn(50))+1000, int64(rng.Intn(40))))
			if rng.Intn(4) == 0 {
				u = store.Del("emp", u.Tuple)
			}
			us[i] = u
		case 1:
			u := store.Ins("dept", relation.Ints(int64(rng.Intn(40))))
			if rng.Intn(3) == 0 {
				u = store.Del("dept", u.Tuple)
			}
			us[i] = u
		case 2:
			lo := int64(rng.Intn(80))
			u := store.Ins("l", relation.Ints(lo, lo+int64(rng.Intn(10))))
			if rng.Intn(3) == 0 {
				u = store.Del("l", u.Tuple)
			}
			us[i] = u
		default:
			u := store.Ins("r", relation.Ints(int64(rng.Intn(100))))
			if rng.Intn(3) == 0 {
				u = store.Del("r", u.Tuple)
			}
			us[i] = u
		}
	}
	return us
}

// TestShardedOracleAgreement is the scale-out oracle: the same
// randomized stream against a 1-site whole-relation deployment, a
// 4-site hash-sharded one, a sharded one with read replicas, and a
// sharded one with routing disabled (pure scatter-gather) must produce
// identical verdicts, identical rejection indexes, an identical mirror,
// and an identical global store.
func TestShardedOracleAgreement(t *testing.T) {
	arms := []shardArm{
		{name: "whole", shards: 1},
		{name: "sharded4", shards: 4},
		{name: "sharded4+replicas", shards: 4, replicas: true},
		{name: "sharded4+scatter", shards: 4, scatter: true},
	}
	for _, seed := range []int64{7, 23} {
		stream := shardStream(seed, 240)
		var wantVerdicts []bool
		var wantMirror, wantGlobal string
		for ai, arm := range arms {
			co, _, leaders := buildShardedArm(t, arm)
			verdicts := make([]bool, len(stream))
			for i, u := range stream {
				rep, err := co.Apply(u)
				if err != nil {
					t.Fatalf("seed %d arm %s update %d (%v): %v", seed, arm.name, i, u, err)
				}
				verdicts[i] = rep.Applied
			}
			co.FlushReplicas()
			mirror, global := dumpStore(co.Checker.DB()), dumpGlobal(co, leaders)
			if ai == 0 {
				wantVerdicts, wantMirror, wantGlobal = verdicts, mirror, global
				continue
			}
			for i := range verdicts {
				if verdicts[i] != wantVerdicts[i] {
					t.Fatalf("seed %d arm %s: verdict diverged at update %d (%v): got applied=%v, whole-relation arm=%v",
						seed, arm.name, i, stream[i], verdicts[i], wantVerdicts[i])
				}
			}
			if mirror != wantMirror {
				t.Fatalf("seed %d arm %s: mirror diverged\narm:\n%s\nwhole:\n%s", seed, arm.name, mirror, wantMirror)
			}
			if global != wantGlobal {
				t.Fatalf("seed %d arm %s: global store diverged\narm:\n%s\nwhole:\n%s", seed, arm.name, global, wantGlobal)
			}
			st := co.Stats()
			if arm.shards > 1 && !arm.scatter && st.ShardRouted == 0 {
				t.Errorf("seed %d arm %s: no probe was shard-routed", seed, arm.name)
			}
			if arm.scatter && st.ShardRouted > 0 {
				t.Errorf("seed %d arm %s: routing disabled but %d probes routed", seed, arm.name, st.ShardRouted)
			}
			if arm.replicas && st.ReplicaReads == 0 {
				t.Errorf("seed %d arm %s: no read was served by a replica", seed, arm.name)
			}
		}
	}
}

// TestShardRoutingShipsFewerTuples pins the point of shard-routed
// probes: deciding emp inserts against a sharded dept must ship far
// fewer tuples when the bound shard key routes each probe to one key
// group than when every decision scatter-refreshes the full relation.
func TestShardRoutingShipsFewerTuples(t *testing.T) {
	wire := func(scatter bool) (routed, scattered int, tuples int64) {
		co, _, _ := buildShardedArm(t, shardArm{shards: 4, scatter: scatter})
		for i := int64(0); i < 40; i++ {
			u := store.Ins("emp", relation.Ints(2000+i, i%30))
			if rep, err := co.Apply(u); err != nil || !rep.Applied {
				t.Fatalf("emp insert %d: err=%v applied=%v", i, err, rep.Applied)
			}
		}
		st := co.Stats()
		return st.ShardRouted, st.ShardScatter, st.WireTuples
	}
	routed, _, routedTuples := wire(false)
	_, scattered, scatterTuples := wire(true)
	if routed == 0 {
		t.Fatal("routing arm never routed a probe")
	}
	if scattered == 0 {
		t.Fatal("scatter arm never scattered")
	}
	if routedTuples*5 > scatterTuples {
		t.Fatalf("routed arm shipped %d tuples, scatter arm %d: want at least 5x reduction", routedTuples, scatterTuples)
	}
}

// pickKeyOnShard returns an int key ≥ from that the placement hashes to
// the wanted shard of rel.
func pickKeyOnShard(t *testing.T, p Placement, rel string, shard int, from int64) int64 {
	t.Helper()
	for k := from; k < from+10000; k++ {
		if p.ShardOf(rel, ast.Int(k)) == shard {
			return k
		}
	}
	t.Fatalf("no key on shard %d of %s", shard, rel)
	return 0
}

// replicaFixture: dept hash-sharded across two leaders, shard 0 carrying
// one read replica.
func replicaFixture(t *testing.T) (*Coordinator, *Loopback, *store.Store, *store.Store) {
	t.Helper()
	place := Placement{"dept": {KeyCol: 0, Shards: []ShardSpec{
		{Leader: "s0", Replicas: []string{"s0-replica"}},
		{Leader: "s1"},
	}}}
	lb := NewLoopback()
	leader0 := store.New()
	lb.AddSite("s0", NewServer(leader0, []string{"dept"}))
	lb.AddSite("s1", NewServer(store.New(), []string{"dept"}))
	replicaDB := store.New()
	replicaSrv := NewServer(replicaDB, []string{"dept"})
	replicaSrv.SetRole("replica")
	lb.AddSite("s0-replica", replicaSrv)

	// Seed only shard 0 — the replicated shard is what these tests watch.
	for k := int64(0); k < 20; k++ {
		if place.ShardOf("dept", ast.Int(k)) != 0 {
			continue
		}
		if _, err := leader0.Insert("dept", relation.Ints(k)); err != nil {
			t.Fatal(err)
		}
	}

	local := store.New()
	co, err := NewPlaced(local, place, lb, Options{
		Checker: core.Options{LocalRelations: []string{"emp"}},
		Timeout: time.Second,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("ref", "panic :- emp(E, D) & not dept(D)."); err != nil {
		t.Fatal(err)
	}
	return co, lb, leader0, replicaDB
}

// TestReplicaSeedAndCatchup: NewPlaced seeds the replica synchronously,
// propagated writes stream to it asynchronously, and once caught up the
// replica serves shard reads.
func TestReplicaSeedAndCatchup(t *testing.T) {
	co, lb, leader0, replicaDB := replicaFixture(t)
	if got, want := dumpStore(replicaDB), dumpStore(leader0); got != want {
		t.Fatalf("replica not seeded at construction\nreplica:\n%s\nleader:\n%s", got, want)
	}

	key := pickKeyOnShard(t, co.place, "dept", 0, 100)
	if rep, err := co.Apply(store.Ins("dept", relation.Ints(key))); err != nil || !rep.Applied {
		t.Fatalf("insert: err=%v applied=%v", err, rep.Applied)
	}
	co.FlushReplicas()
	if !replicaDB.Contains("dept", relation.Ints(key)) {
		t.Fatal("propagated write did not reach the replica")
	}
	if got, want := dumpStore(replicaDB), dumpStore(leader0); got != want {
		t.Fatalf("replica diverged from leader\nreplica:\n%s\nleader:\n%s", got, want)
	}

	// A fresh replica takes shard reads: scan the relation a few times and
	// the round-robin must land on the replica.
	before := lb.Stats().Delivered["s0-replica"]
	for i := 0; i < 4; i++ {
		if err := co.refreshRel("dept"); err != nil {
			t.Fatal(err)
		}
	}
	if lb.Stats().Delivered["s0-replica"] <= before {
		t.Fatal("no shard read reached the fresh replica")
	}
	if co.Stats().ReplicaReads == 0 {
		t.Fatal("ReplicaReads not accounted")
	}
}

// TestReplicaFailureStaleThenResync: a replica that misses a write goes
// stale (and stops serving reads); the next write queues a full resync
// that rebuilds it from the leader and restores freshness.
func TestReplicaFailureStaleThenResync(t *testing.T) {
	co, lb, leader0, replicaDB := replicaFixture(t)

	lb.Partition("s0-replica")
	k1 := pickKeyOnShard(t, co.place, "dept", 0, 200)
	if rep, err := co.Apply(store.Ins("dept", relation.Ints(k1))); err != nil || !rep.Applied {
		t.Fatalf("insert during partition: err=%v applied=%v", err, rep.Applied)
	}
	co.FlushReplicas()
	if replicaDB.Contains("dept", relation.Ints(k1)) {
		t.Fatal("partitioned replica received the write")
	}
	// Stale: shard reads all fall back to the leader.
	base := co.Stats().ReplicaReads
	for i := 0; i < 4; i++ {
		if err := co.refreshRel("dept"); err != nil {
			t.Fatal(err)
		}
	}
	if got := co.Stats().ReplicaReads; got != base {
		t.Fatalf("stale replica served %d reads", got-base)
	}

	lb.Heal("s0-replica")
	k2 := pickKeyOnShard(t, co.place, "dept", 0, 300)
	if rep, err := co.Apply(store.Ins("dept", relation.Ints(k2))); err != nil || !rep.Applied {
		t.Fatalf("insert after heal: err=%v applied=%v", err, rep.Applied)
	}
	co.FlushReplicas()
	if got, want := dumpStore(replicaDB), dumpStore(leader0); got != want {
		t.Fatalf("resync did not converge replica to leader\nreplica:\n%s\nleader:\n%s", got, want)
	}
	st := co.Stats()
	if st.ReplicaResyncs == 0 {
		t.Fatal("no resync accounted")
	}
	// Fresh again: reads reach the replica once more.
	before := lb.Stats().Delivered["s0-replica"]
	for i := 0; i < 4; i++ {
		if err := co.refreshRel("dept"); err != nil {
			t.Fatal(err)
		}
	}
	if lb.Stats().Delivered["s0-replica"] <= before {
		t.Fatal("recovered replica serves no reads")
	}
}

// TestReplaceRequiresReplicaRole: a leader-role site refuses the bulk
// OpReplace that replica resync uses.
func TestReplaceRequiresReplicaRole(t *testing.T) {
	srv := NewServer(store.New(), []string{"dept"})
	resp := srv.Handle(&Request{ID: 1, Type: OpReplace, Relation: "dept", Arity: 1, Tuples: [][]string{{EncodeValue(ast.Int(1))}}})
	if resp.OK {
		t.Fatal("leader accepted OpReplace")
	}
	srv.SetRole("replica")
	resp = srv.Handle(&Request{ID: 2, Type: OpReplace, Relation: "dept", Arity: 1, Tuples: [][]string{{EncodeValue(ast.Int(1))}}})
	if !resp.OK {
		t.Fatalf("replica refused OpReplace: %s", resp.Err)
	}
}
