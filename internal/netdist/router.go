package netdist

import (
	"sync"

	"repro/internal/ast"
	"repro/internal/relation"
)

// shardRouter implements eval.ProbeRouter over the coordinator's
// placement: global-evaluation probes on hash-partitioned relations are
// served from the owning shard over the wire instead of a local mirror.
// When the probe's bound columns cover the shard key the fetch goes to
// the single owning shard ("routed"); otherwise it scatter-gathers every
// shard and merges ("scatter"). Results are cached per coordinator apply
// generation — one update's evaluation may probe the same key group many
// times across join positions, but pays the wire at most once.
//
// Relations with an update in flight (addPending) are not intercepted:
// the coordinator's mirror already holds the post-update trial state for
// them, and falling through to the store keeps trial visibility exact —
// the conflict-aware scheduler guarantees no other in-flight update
// reads the shards a pending write touches.
type shardRouter struct {
	co *Coordinator

	mu      sync.Mutex
	gen     uint64
	full    map[string][]relation.Tuple // rel -> scatter-gathered contents
	keys    map[string][]relation.Tuple // rel + "\x00" + key -> key group
	pending map[string]int              // rel -> in-flight updates
}

func newShardRouter(co *Coordinator) *shardRouter {
	return &shardRouter{
		co:      co,
		full:    map[string][]relation.Tuple{},
		keys:    map[string][]relation.Tuple{},
		pending: map[string]int{},
	}
}

// addPending marks an update on rel in flight; probes on rel fall
// through to the mirror until the matching removePending.
func (r *shardRouter) addPending(rel string) {
	r.mu.Lock()
	r.pending[rel]++
	r.mu.Unlock()
}

func (r *shardRouter) removePending(rel string) {
	r.mu.Lock()
	if r.pending[rel]--; r.pending[rel] <= 0 {
		delete(r.pending, rel)
	}
	r.mu.Unlock()
}

// claims reports whether the router intercepts reads of rel right now,
// resetting the cache when the coordinator has applied anything since
// the last probe.
func (r *shardRouter) claims(rel string) bool {
	pl, ok := r.co.place[rel]
	if !ok || !pl.Sharded() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if gen := r.co.applyGen.Load(); gen != r.gen {
		r.gen = gen
		clear(r.full)
		clear(r.keys)
	}
	return r.pending[rel] == 0
}

// Probe implements eval.ProbeRouter.
func (r *shardRouter) Probe(dst []relation.Tuple, rel string, cols []int, vals []ast.Value) ([]relation.Tuple, bool, error) {
	if !r.claims(rel) {
		return dst, false, nil
	}
	pl := r.co.place[rel]
	group, err := r.group(rel, pl, cols, vals)
	if err != nil {
		return nil, false, err
	}
	for _, t := range group {
		if matchCols(t, cols, vals) {
			dst = append(dst, t)
		}
	}
	return dst, true, nil
}

// Contains implements eval.ProbeRouter (negated-subgoal membership).
func (r *shardRouter) Contains(rel string, t relation.Tuple) (bool, bool, error) {
	if !r.claims(rel) {
		return false, false, nil
	}
	pl := r.co.place[rel]
	var group []relation.Tuple
	var err error
	if pl.KeyCol < len(t) {
		group, err = r.fetchKey(rel, pl, t[pl.KeyCol])
	} else {
		group, err = r.fetchFull(rel)
	}
	if err != nil {
		return false, false, err
	}
	for _, g := range group {
		if g.Equal(t) {
			return true, true, nil
		}
	}
	return false, true, nil
}

// group returns the candidate tuples for a probe: the single owning
// shard's key group when the bound columns cover the shard key, the
// merged contents of every shard otherwise.
func (r *shardRouter) group(rel string, pl RelPlacement, cols []int, vals []ast.Value) ([]relation.Tuple, error) {
	for i, c := range cols {
		if c == pl.KeyCol {
			return r.fetchKey(rel, pl, vals[i])
		}
	}
	return r.fetchFull(rel)
}

// fetchKey returns the key group from the owning shard, cached per
// generation.
func (r *shardRouter) fetchKey(rel string, pl RelPlacement, key ast.Value) ([]relation.Tuple, error) {
	ck := rel + "\x00" + relation.ValueKey(key)
	r.mu.Lock()
	group, ok := r.keys[ck]
	r.mu.Unlock()
	if ok {
		return group, nil
	}
	ss := r.co.shardsOf[rel][r.co.place.ShardOf(rel, key)]
	sp := r.co.routeSpan(rel, "routed")
	resp, err := r.co.call(r.co.readTarget(ss), &Request{
		Type:     OpFetch,
		Relation: rel,
		Col:      pl.KeyCol,
		Value:    EncodeValue(key),
	})
	if sp != nil {
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	group, err = DecodeTuples(resp.Tuples)
	if err != nil {
		return nil, &RemoteError{Site: ss.leader, Msg: err.Error()}
	}
	r.co.noteRouted(1)
	r.mu.Lock()
	r.keys[ck] = group
	r.mu.Unlock()
	return group, nil
}

// fetchFull scatter-gathers the relation from every shard, cached per
// generation.
func (r *shardRouter) fetchFull(rel string) ([]relation.Tuple, error) {
	r.mu.Lock()
	all, ok := r.full[rel]
	r.mu.Unlock()
	if ok {
		return all, nil
	}
	sp := r.co.routeSpan(rel, "scatter")
	defer func() {
		if sp != nil {
			sp.End()
		}
	}()
	for _, ss := range r.co.shardsOf[rel] {
		resp, err := r.co.call(r.co.readTarget(ss), &Request{Type: OpScan, Relation: rel})
		if err != nil {
			return nil, err
		}
		ts, err := DecodeTuples(resp.Tuples)
		if err != nil {
			return nil, &RemoteError{Site: ss.leader, Msg: err.Error()}
		}
		all = append(all, ts...)
	}
	r.co.noteScatter(1)
	r.mu.Lock()
	r.full[rel] = all
	r.mu.Unlock()
	return all, nil
}

// matchCols reports whether the tuple's projection onto cols equals
// vals (the ProbeRouter contract: results match every bound column).
func matchCols(t relation.Tuple, cols []int, vals []ast.Value) bool {
	for i, c := range cols {
		if c >= len(t) || !vals[i].Equal(t[c]) {
			return false
		}
	}
	return true
}
