package netdist

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
)

// startSite serves db on an ephemeral 127.0.0.1 port and returns the
// address; the listener closes with the test.
func startSite(t *testing.T, db *store.Store, relations []string) (string, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := NewServer(db, relations)
	go srv.Serve(l)
	return l.Addr().String(), srv
}

func TestTCPScanFetchEval(t *testing.T) {
	db := newSiteStore(t, "r(3). r(7). r(7777).")
	addr, srv := startSite(t, db, []string{"r"})
	tr := NewTCPTransport()
	defer tr.Close()

	resp, err := tr.RoundTrip(addr, &Request{ID: 1, Type: OpScan, Relation: "r"}, time.Second)
	if err != nil || !resp.OK || len(resp.Tuples) != 3 {
		t.Fatalf("scan over TCP: resp=%+v err=%v", resp, err)
	}
	resp, err = tr.RoundTrip(addr, &Request{ID: 2, Type: OpFetch, Relation: "r", Col: 0, Value: "#7"}, time.Second)
	if err != nil || !resp.OK || len(resp.Tuples) != 1 {
		t.Fatalf("fetch over TCP: resp=%+v err=%v", resp, err)
	}
	resp, err = tr.RoundTrip(addr, &Request{ID: 3, Type: OpEval, Program: "hit :- r(X) & X > 100.", Goal: "hit"}, time.Second)
	if err != nil || !resp.OK || !resp.Holds {
		t.Fatalf("eval over TCP: resp=%+v err=%v", resp, err)
	}
	// Sequential round trips reuse the pooled connection.
	if st := srv.Stats(); st.Requests[OpScan] != 1 || st.Requests[OpFetch] != 1 {
		t.Errorf("server stats: %+v", st)
	}
	tr.mu.Lock()
	idle := len(tr.idle[addr])
	tr.mu.Unlock()
	if idle != 1 {
		t.Errorf("idle pool holds %d conns, want 1 (reuse)", idle)
	}
}

func TestTCPDialFailure(t *testing.T) {
	tr := NewTCPTransport()
	tr.DialTimeout = 200 * time.Millisecond
	defer tr.Close()
	// A port nothing listens on: grab one and close it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	if _, err := tr.RoundTrip(addr, &Request{Type: OpPing}, time.Second); err == nil {
		t.Error("round trip to a dead site succeeded")
	}
}

func TestTCPDeadlineOnSilentPeer(t *testing.T) {
	// A listener that accepts and never answers: the round trip must
	// respect its deadline instead of hanging.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Swallow input, never reply.
		}
	}()
	tr := NewTCPTransport()
	defer tr.Close()
	start := time.Now()
	_, err = tr.RoundTrip(l.Addr().String(), &Request{Type: OpPing}, 100*time.Millisecond)
	if err == nil {
		t.Fatal("round trip against a silent peer succeeded")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("deadline not honored: took %v", el)
	}
}

// TestCoordinatorOverTCP runs the full coordinator stack across real
// sockets: two sites on ephemeral ports, mixed workload, then one site
// goes down mid-stream.
func TestCoordinatorOverTCP(t *testing.T) {
	deptDB := newSiteStore(t, "dept(toy). dept(shoe).")
	salDB := newSiteStore(t, "salRange(toy,10,100). salRange(shoe,20,200).")
	deptAddr, _ := startSite(t, deptDB, []string{"dept"})
	salAddr, _ := startSite(t, salDB, []string{"salRange"})

	local := store.New()
	if _, err := local.Insert("emp", relation.TupleOf(strv("ann"), strv("toy"), intv(50))); err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport()
	defer tr.Close()
	co, err := New(local, []SiteSpec{
		{Site: deptAddr, Relations: []string{"dept"}},
		{Site: salAddr, Relations: []string{"salRange"}},
	}, tr, Options{
		Checker: core.Options{LocalRelations: []string{"emp"}},
		Timeout: time.Second,
		Retries: 1,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{
		"ri": "panic :- emp(E,D,S) & not dept(D).",
		"lo": "panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.",
		"hi": "panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.",
	} {
		if err := co.Checker.AddConstraintSource(name, src); err != nil {
			t.Fatal(err)
		}
	}
	// A valid hire commits; an over-cap hire is rejected with verdicts.
	rep, err := co.Apply(store.Ins("emp", relation.TupleOf(strv("bob"), strv("shoe"), intv(60))))
	if err != nil || !rep.Applied {
		t.Fatalf("valid hire: rep=%+v err=%v", rep, err)
	}
	rep, err = co.Apply(store.Ins("emp", relation.TupleOf(strv("eve"), strv("toy"), intv(900))))
	if err != nil || rep.Applied {
		t.Fatalf("over-cap hire: rep=%+v err=%v", rep, err)
	}
	if vs := rep.Violations(); len(vs) != 1 || vs[0] != "hi" {
		t.Errorf("violations = %v", vs)
	}
	if st := co.Stats(); st.RoundTrips == 0 || st.WireTuples == 0 {
		t.Errorf("no wire traffic recorded: %+v", st)
	}
}
