package netdist

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport dials sites over TCP and reuses idle connections. A
// connection is checked out exclusively for one round trip (the protocol
// does not multiplex), returned to the per-site idle pool on success and
// closed on any error — a failed connection's state is unknowable, so it
// is never reused.
type TCPTransport struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// MaxIdlePerSite bounds the idle pool per site (default 4); excess
	// connections are closed on return.
	MaxIdlePerSite int

	mu     sync.Mutex
	idle   map[string][]net.Conn
	closed bool
}

// NewTCPTransport returns a transport with default timeouts and pool
// size.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{DialTimeout: 2 * time.Second, MaxIdlePerSite: 4, idle: map[string][]net.Conn{}}
}

// get pops an idle connection for the site or dials a fresh one.
func (t *TCPTransport) get(site string) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("netdist: transport closed")
	}
	if conns := t.idle[site]; len(conns) > 0 {
		c := conns[len(conns)-1]
		t.idle[site] = conns[:len(conns)-1]
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	return net.DialTimeout("tcp", site, t.DialTimeout)
}

// put returns a healthy connection to the pool.
func (t *TCPTransport) put(site string, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.idle[site]) >= t.MaxIdlePerSite {
		c.Close()
		return
	}
	t.idle[site] = append(t.idle[site], c)
}

// RoundTrip sends req to site and reads the response, all within
// timeout.
func (t *TCPTransport) RoundTrip(site string, req *Request, timeout time.Duration) (*Response, error) {
	c, err := t.get(site)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		if err := c.SetDeadline(time.Now().Add(timeout)); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := WriteFrame(c, req); err != nil {
		c.Close()
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c, &resp); err != nil {
		c.Close()
		return nil, err
	}
	if resp.ID != req.ID {
		c.Close()
		return nil, fmt.Errorf("netdist: response id %d for request %d", resp.ID, req.ID)
	}
	if timeout > 0 {
		if err := c.SetDeadline(time.Time{}); err != nil {
			c.Close()
			return &resp, nil
		}
	}
	t.put(site, c)
	return &resp, nil
}

// Close closes every idle connection; in-flight round trips finish but
// their connections are not re-pooled.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for _, conns := range t.idle {
		for _, c := range conns {
			c.Close()
		}
	}
	t.idle = map[string][]net.Conn{}
	return nil
}
