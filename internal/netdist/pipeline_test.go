package netdist

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
)

// pipeFixture builds a two-store deployment of the D1 constraint: l
// lives at the coordinator, r behind a loopback site. Returns the
// coordinator, the site's own store (to verify propagation and
// rollback reach it) and the loopback for latency injection.
func pipeFixture(t *testing.T, applyWorkers int) (*Coordinator, *store.Store, *Loopback) {
	t.Helper()
	remote := store.New()
	for _, p := range []int64{15, 35, 60} {
		if _, err := remote.Insert("r", relation.Ints(p)); err != nil {
			t.Fatal(err)
		}
	}
	lb := NewLoopback()
	lb.AddSite("siteR", NewServer(remote, []string{"r"}))
	local := store.New()
	for _, iv := range [][2]int64{{0, 10}, {20, 30}, {40, 50}} {
		if _, err := local.Insert("l", relation.Ints(iv[0], iv[1])); err != nil {
			t.Fatal(err)
		}
	}
	co, err := New(local, []SiteSpec{{Site: "siteR", Relations: []string{"r"}}}, lb, Options{
		Checker:      core.Options{LocalRelations: []string{"l"}},
		Timeout:      time.Second,
		Backoff:      time.Millisecond,
		ApplyWorkers: applyWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return co, remote, lb
}

// dumpStore renders a store deterministically for cross-arm comparison.
func dumpStore(db *store.Store) string {
	var b strings.Builder
	for _, name := range db.Names() {
		var tuples []string
		for _, tp := range db.Tuples(name) {
			tuples = append(tuples, tp.String())
		}
		sort.Strings(tuples)
		fmt.Fprintf(&b, "%s: %s\n", name, strings.Join(tuples, " "))
	}
	return b.String()
}

// pipeStream mixes l and r traffic over a small band so conflicting
// pairs (same tuple twice, l vs r) are common.
func pipeStream(seed int64, n int) []store.Update {
	rng := rand.New(rand.NewSource(seed))
	us := make([]store.Update, n)
	for i := range us {
		if rng.Intn(3) > 0 {
			lo := int64(rng.Intn(80))
			u := store.Ins("l", relation.Ints(lo, lo+int64(rng.Intn(10))))
			if rng.Intn(3) == 0 {
				u = store.Del("l", u.Tuple)
			}
			us[i] = u
		} else {
			u := store.Ins("r", relation.Ints(int64(rng.Intn(100))))
			if rng.Intn(3) == 0 {
				u = store.Del("r", u.Tuple)
			}
			us[i] = u
		}
	}
	return us
}

// TestApplyStreamAgreement is the coordinator half of the randomized
// agreement test: the same stream through ApplyStream at workers 1
// (sequential loop), 4 and 8 must produce identical per-update verdicts,
// an identical mirror and an identical site store.
func TestApplyStreamAgreement(t *testing.T) {
	const n = 200
	for _, seed := range []int64{3, 11} {
		stream := pipeStream(seed, n)
		var wantVerdicts []bool
		var wantMirror, wantSite string
		for _, workers := range []int{1, 4, 8} {
			co, remote, _ := pipeFixture(t, 1)
			results := co.ApplyStream(stream, workers)
			vs := make([]bool, len(results))
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("seed %d workers %d update %d: %v", seed, workers, i, r.Err)
				}
				vs[i] = r.Report.Applied
			}
			mir, site := dumpStore(co.Checker.DB()), dumpStore(remote)
			if workers == 1 {
				wantVerdicts, wantMirror, wantSite = vs, mir, site
				continue
			}
			for i := range vs {
				if vs[i] != wantVerdicts[i] {
					t.Fatalf("seed %d workers %d: verdict diverged at update %d (%v): got applied=%v, sequential=%v",
						seed, workers, i, stream[i], vs[i], wantVerdicts[i])
				}
			}
			if mir != wantMirror {
				t.Fatalf("seed %d workers %d: mirror diverged\npipelined:\n%s\nsequential:\n%s", seed, workers, mir, wantMirror)
			}
			if site != wantSite {
				t.Fatalf("seed %d workers %d: site store diverged\npipelined:\n%s\nsequential:\n%s", seed, workers, site, wantSite)
			}
		}
	}
}

// TestApplyStreamOverlapsLatency pins the point of the pipelined arm:
// with wire latency on the site, independent updates overlap their RPCs
// — 8 workers must finish a refresh-heavy stream well faster than the
// sequential loop that waits out each round trip in turn.
func TestApplyStreamOverlapsLatency(t *testing.T) {
	mkStream := func() []store.Update {
		us := make([]store.Update, 24)
		for i := range us {
			lo := int64(1000 + 10*i)
			us[i] = store.Ins("l", relation.Ints(lo, lo+1)) // each needs one r refresh
		}
		return us
	}
	run := func(workers int) time.Duration {
		co, _, lb := pipeFixture(t, 1)
		lb.SetLatency("siteR", 2*time.Millisecond)
		start := time.Now()
		for i, r := range co.ApplyStream(mkStream(), workers) {
			if r.Err != nil || !r.Report.Applied {
				t.Fatalf("update %d: err=%v applied=%v", i, r.Err, r.Report.Applied)
			}
		}
		return time.Since(start)
	}
	seq, pipe := run(1), run(8)
	if pipe >= seq {
		t.Errorf("pipelined arm (%v) not faster than sequential (%v) under 2ms site latency", pipe, seq)
	}
}

// TestPipelinedBatchAtomicRollback: a rejection mid-batch on the
// pipelined ApplyBatch path must roll the whole batch back — mirror AND
// remote site — and report the same failure index as the sequential arm.
func TestPipelinedBatchAtomicRollback(t *testing.T) {
	batch := []store.Update{
		store.Ins("l", relation.Ints(100, 101)), // admissible
		store.Ins("r", relation.Ints(200)),      // admissible, propagates to siteR
		store.Ins("l", relation.Ints(55, 65)),   // covers r=60: rejected
		store.Ins("l", relation.Ints(300, 301)), // past the failure; sequential never runs it
	}

	seqCo, seqRemote, _ := pipeFixture(t, 1)
	seqBr, seqErr := seqCo.ApplyBatch(batch)
	if seqErr != nil {
		t.Fatal(seqErr)
	}

	co, remote, _ := pipeFixture(t, 8)
	preMirror, preSite := dumpStore(co.Checker.DB()), dumpStore(remote)
	br, err := co.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if br.Applied || br.FailedAt != 2 {
		t.Fatalf("pipelined batch: applied=%v failedAt=%d, want rejection at 2", br.Applied, br.FailedAt)
	}
	if br.Applied != seqBr.Applied || br.FailedAt != seqBr.FailedAt || len(br.Reports) != len(seqBr.Reports) {
		t.Fatalf("pipelined outcome (failedAt=%d, %d reports) != sequential (failedAt=%d, %d reports)",
			br.FailedAt, len(br.Reports), seqBr.FailedAt, len(seqBr.Reports))
	}
	for i := range br.Reports {
		if renderReport(br.Reports[i]) != renderReport(seqBr.Reports[i]) {
			t.Fatalf("report %d diverged\npipelined: %s\nsequential: %s",
				i, renderReport(br.Reports[i]), renderReport(seqBr.Reports[i]))
		}
	}
	if got := dumpStore(co.Checker.DB()); got != preMirror {
		t.Fatalf("mirror not rolled back\nafter:\n%s\nbefore:\n%s", got, preMirror)
	}
	if got := dumpStore(remote); got != preSite {
		t.Fatalf("site store not rolled back (r(200) must be un-propagated)\nafter:\n%s\nbefore:\n%s", got, preSite)
	}
	if got := dumpStore(seqRemote); got != preSite {
		t.Fatalf("sequential arm site store diverged:\n%s", got)
	}
}

// TestPipelinedBatchCommits: an all-admissible batch on the pipelined
// path commits everything, including the remote propagation.
func TestPipelinedBatchCommits(t *testing.T) {
	co, remote, _ := pipeFixture(t, 4)
	batch := []store.Update{
		store.Ins("l", relation.Ints(100, 101)),
		store.Ins("r", relation.Ints(200)),
		store.Ins("l", relation.Ints(300, 301)),
		store.Del("l", relation.Ints(0, 10)),
	}
	br, err := co.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !br.Applied || br.FailedAt != -1 || len(br.Reports) != len(batch) {
		t.Fatalf("batch: applied=%v failedAt=%d reports=%d", br.Applied, br.FailedAt, len(br.Reports))
	}
	if !remote.Contains("r", relation.Ints(200)) {
		t.Fatal("r(200) not propagated to its site")
	}
	if co.Checker.DB().Contains("l", relation.Ints(0, 10)) {
		t.Fatal("delete in batch not applied")
	}
}
