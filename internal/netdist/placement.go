package netdist

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/relation"
)

// ShardSpec is one shard of a placed relation: the leader site owning
// the shard's tuples plus any read replicas trailing it (see replica.go
// for the freshness protocol).
type ShardSpec struct {
	Leader   string
	Replicas []string
}

// RelPlacement describes where one relation lives. A single shard is
// today's whole-site ownership (KeyCol is ignored); more than one shard
// hash-partitions the relation by KeyCol: tuple t lives on shard
// ShardOf(t[KeyCol]).
type RelPlacement struct {
	KeyCol int
	Shards []ShardSpec
}

// Sharded reports whether the relation is hash-partitioned.
func (rp RelPlacement) Sharded() bool { return len(rp.Shards) > 1 }

// Placement maps each remotely-placed relation to its shards. Relations
// absent from the map are local to the coordinator. Placement implements
// sched.Sharder, so the same map that routes the coordinator's wire
// traffic also refines the scheduler's footprints to shard granularity.
type Placement map[string]RelPlacement

// ShardKey implements sched.Sharder: the key column of a
// hash-partitioned relation.
func (p Placement) ShardKey(rel string) (int, bool) {
	rp, ok := p[rel]
	if !ok || !rp.Sharded() {
		return 0, false
	}
	return rp.KeyCol, true
}

// ShardOf implements sched.Sharder: FNV-1a over the key's canonical wire
// encoding, mod shard count. Hashing the canonical text (not the
// process-local fingerprint) keeps the mapping stable across processes,
// so every coordinator and every test agree on tuple ownership.
func (p Placement) ShardOf(rel string, key ast.Value) int {
	rp := p[rel]
	if len(rp.Shards) == 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(relation.ValueKey(key)))
	return int(h.Sum32() % uint32(len(rp.Shards)))
}

// PlacementFromSites lifts the classic whole-relation site specs into a
// placement: each relation becomes a single leaderless-replica shard
// owned by its site. New routes through this, so the default deployment
// is bit-identical to the pre-placement coordinator.
func PlacementFromSites(sites []SiteSpec) Placement {
	p := Placement{}
	for _, spec := range sites {
		for _, rel := range spec.Relations {
			p[rel] = RelPlacement{Shards: []ShardSpec{{Leader: spec.Site}}}
		}
	}
	return p
}

// ParseShardSpec parses the ccheck flag syntax
// "rel@keycol=site1,site2,..." into a sharded relation placement. One
// site is allowed (whole ownership with an explicit key column).
func ParseShardSpec(s string) (string, RelPlacement, error) {
	head, sitesPart, ok := strings.Cut(s, "=")
	if !ok {
		return "", RelPlacement{}, fmt.Errorf("netdist: shard spec %q is not rel@keycol=site1,site2,...", s)
	}
	rel, colPart, ok := strings.Cut(strings.TrimSpace(head), "@")
	if !ok || strings.TrimSpace(rel) == "" {
		return "", RelPlacement{}, fmt.Errorf("netdist: shard spec %q is not rel@keycol=site1,site2,...", s)
	}
	col, err := strconv.Atoi(strings.TrimSpace(colPart))
	if err != nil || col < 0 {
		return "", RelPlacement{}, fmt.Errorf("netdist: shard spec %q: bad key column %q", s, colPart)
	}
	rp := RelPlacement{KeyCol: col}
	for _, site := range strings.Split(sitesPart, ",") {
		site = strings.TrimSpace(site)
		if site == "" {
			return "", RelPlacement{}, fmt.Errorf("netdist: shard spec %q has an empty site", s)
		}
		rp.Shards = append(rp.Shards, ShardSpec{Leader: site})
	}
	if len(rp.Shards) == 0 {
		return "", RelPlacement{}, fmt.Errorf("netdist: shard spec %q names no sites", s)
	}
	return strings.TrimSpace(rel), rp, nil
}

// ParseReplicaSpec parses "rel/shardIdx=site" — attach a read replica to
// one shard of an already-declared relation.
func ParseReplicaSpec(s string) (rel string, shard int, site string, err error) {
	head, site, ok := strings.Cut(s, "=")
	site = strings.TrimSpace(site)
	if !ok || site == "" {
		return "", 0, "", fmt.Errorf("netdist: replica spec %q is not rel/shard=site", s)
	}
	rel, idxPart, ok := strings.Cut(strings.TrimSpace(head), "/")
	if !ok || strings.TrimSpace(rel) == "" {
		return "", 0, "", fmt.Errorf("netdist: replica spec %q is not rel/shard=site", s)
	}
	shard, err = strconv.Atoi(strings.TrimSpace(idxPart))
	if err != nil || shard < 0 {
		return "", 0, "", fmt.Errorf("netdist: replica spec %q: bad shard index %q", s, idxPart)
	}
	return strings.TrimSpace(rel), shard, site, nil
}

// validate checks structural invariants: sharded relations need a
// non-negative key column, and within one relation every leader and
// replica site is distinct (a site holding two shards of one relation
// could not tell their tuples apart through the whole-relation wire
// protocol).
func (p Placement) validate() error {
	for rel, rp := range p {
		if len(rp.Shards) == 0 {
			return fmt.Errorf("netdist: relation %s placed with no shards", rel)
		}
		if rp.Sharded() && rp.KeyCol < 0 {
			return fmt.Errorf("netdist: sharded relation %s has no key column", rel)
		}
		seen := map[string]bool{}
		for si, sh := range rp.Shards {
			if sh.Leader == "" {
				return fmt.Errorf("netdist: relation %s shard %d has no leader", rel, si)
			}
			for _, site := range append([]string{sh.Leader}, sh.Replicas...) {
				if seen[site] {
					return fmt.Errorf("netdist: relation %s places site %s twice", rel, site)
				}
				seen[site] = true
			}
		}
	}
	return nil
}
