package netdist

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
)

// metricsFixture is faultFixture with a registry attached to the
// coordinator.
func metricsFixture(t *testing.T, reg *obs.Registry) (*Coordinator, *Loopback) {
	t.Helper()
	remote := store.New()
	if _, err := remote.Insert("r", relation.Ints(10000)); err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback()
	lb.AddSite("s1", NewServer(remote, []string{"r"}))
	local := store.New()
	if _, err := local.Insert("l", relation.Ints(20, 30)); err != nil {
		t.Fatal(err)
	}
	co, err := New(local, []SiteSpec{{Site: "s1", Relations: []string{"r"}}}, lb, Options{
		Checker: core.Options{LocalRelations: []string{"l"}},
		Timeout: 50 * time.Millisecond,
		Retries: 3,
		Backoff: time.Millisecond,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Checker.AddConstraintSource("fi", "panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
		t.Fatal(err)
	}
	return co, lb
}

// sumPrefix adds every integer series whose key starts with prefix.
func sumPrefix(snap map[string]any, prefix string) int64 {
	var total int64
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) {
			if n, ok := v.(int64); ok {
				total += n
			}
		}
	}
	return total
}

func TestCoordinatorMetricsAgreeWithStats(t *testing.T) {
	reg := obs.NewRegistry()
	co, lb := metricsFixture(t, reg)

	// A global update whose scan is dropped twice before delivery: one
	// completed round trip, two retries.
	lb.DropNext("s1", 2)
	if rep, err := co.Apply(store.Ins("l", relation.Ints(100, 200))); err != nil || !rep.Applied {
		t.Fatalf("update with transient drops: rep=%+v err=%v", rep, err)
	}
	// A partitioned site: the update is refused, every attempt errors.
	lb.Partition("s1")
	if _, err := co.Apply(store.Ins("l", relation.Ints(300, 400))); !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("update under partition: err=%v", err)
	}

	st := co.Stats()
	snap := reg.Snapshot()

	// The registry counts every wire event including the initial sync;
	// Stats books the sync apart.
	if got, want := sumPrefix(snap, "cc_coord_rpc_total{"), int64(st.RoundTrips+st.SyncTrips); got != want {
		t.Errorf("rpc_total = %d, stats say %d", got, want)
	}
	if got, want := snap["cc_coord_wire_tuples_total"].(int64), st.WireTuples+st.SyncTuples; got != want {
		t.Errorf("wire_tuples_total = %d, stats say %d", got, want)
	}
	if got, want := sumPrefix(snap, "cc_coord_retries_total{"), int64(st.Retries); got != want {
		t.Errorf("retries_total = %d, stats say %d", got, want)
	}
	if got, want := snap["cc_coord_unavailable_total"].(int64), int64(st.Unavailable); got != want {
		t.Errorf("unavailable_total = %d, stats say %d", got, want)
	}
	// 2 drops + 4 partitioned attempts (first try + 3 retries).
	if got := sumPrefix(snap, "cc_coord_rpc_errors_total{"); got != 6 {
		t.Errorf("rpc_errors_total = %d, want 6", got)
	}
	if snap["cc_coord_bytes_sent_total"].(int64) <= 0 || snap["cc_coord_bytes_recv_total"].(int64) <= 0 {
		t.Error("byte counters did not move")
	}
	// Latency is observed per attempt, delivered or not.
	hist, ok := snap[`cc_coord_rpc_seconds{op="scan"}`].(map[string]any)
	if !ok {
		t.Fatalf("no scan latency histogram in %v", snap)
	}
	attempts := lb.Stats().Attempts["s1"]
	if got := hist["count"].(uint64); got != uint64(attempts) {
		t.Errorf("rpc_seconds count = %d, want %d attempts", got, attempts)
	}

	if st.RetriesBySite["s1"] != st.Retries {
		t.Errorf("RetriesBySite = %v, Retries = %d", st.RetriesBySite, st.Retries)
	}
	if st.UnavailableBySite["s1"] != 1 {
		t.Errorf("UnavailableBySite = %v, want s1=1", st.UnavailableBySite)
	}
}

func TestReportShowsRetriesAndDegradedSites(t *testing.T) {
	co, lb := metricsFixture(t, obs.NewRegistry())
	rep := co.Report()
	for _, absent := range []string{"retries by site", "degraded sites"} {
		if strings.Contains(rep, absent) {
			t.Errorf("healthy report mentions %q:\n%s", absent, rep)
		}
	}
	lb.DropNext("s1", 2)
	if _, err := co.Apply(store.Ins("l", relation.Ints(100, 200))); err != nil {
		t.Fatal(err)
	}
	lb.Partition("s1")
	if _, err := co.Apply(store.Ins("l", relation.Ints(300, 400))); !errors.Is(err, ErrSiteUnavailable) {
		t.Fatalf("update under partition: err=%v", err)
	}
	rep = co.Report()
	// 2 dropped frames + 3 retries against the partition.
	if !strings.Contains(rep, "retries by site: s1=5") {
		t.Errorf("report missing per-site retries:\n%s", rep)
	}
	if !strings.Contains(rep, "degraded sites: s1=1") {
		t.Errorf("report missing degraded sites:\n%s", rep)
	}
}

func TestServerMetricsAgreeWithStats(t *testing.T) {
	db := store.New()
	for _, tu := range []relation.Tuple{relation.Ints(1, 2), relation.Ints(3, 4)} {
		if _, err := db.Insert("r", tu); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(db, []string{"r"})
	reg := obs.NewRegistry()
	srv.Instrument(reg)

	srv.Handle(&Request{Type: OpScan, Relation: "r"})
	srv.Handle(&Request{Type: OpScan, Relation: "r"})
	srv.Handle(&Request{Type: OpPing})
	srv.Handle(&Request{Type: OpScan, Relation: "hidden"}) // error: not served

	st := srv.Stats()
	snap := reg.Snapshot()

	var statReqs int64
	for _, n := range st.Requests {
		statReqs += n
	}
	if got := sumPrefix(snap, "cc_site_requests_total{"); got != statReqs {
		t.Errorf("requests_total = %d, stats say %d", got, statReqs)
	}
	if got := snap[`cc_site_tuples_sent_total{relation="r"}`].(int64); got != st.TuplesSent["r"] {
		t.Errorf("tuples_sent_total{r} = %d, stats say %d", got, st.TuplesSent["r"])
	}
	if got := snap["cc_site_errors_total"].(int64); got != st.Errors {
		t.Errorf("errors_total = %d, stats say %d", got, st.Errors)
	}
	hist, ok := snap[`cc_site_request_seconds{op="scan"}`].(map[string]any)
	if !ok {
		t.Fatalf("no scan latency histogram in %v", snap)
	}
	if got := hist["count"].(uint64); got != uint64(st.Requests[OpScan]) {
		t.Errorf("request_seconds{scan} count = %d, stats say %d", got, st.Requests[OpScan])
	}
	if snap["cc_site_bytes_recv_total"].(int64) <= 0 || snap["cc_site_bytes_sent_total"].(int64) <= 0 {
		t.Error("byte counters did not move")
	}
}
