package netdist

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fault errors returned by the loopback transport. Both are transport
// errors (retryable) rather than RemoteErrors: they model the request
// never reaching the site or the response never coming back.
var (
	// ErrDropped models a lost frame: the request was consumed and no
	// response arrived before the deadline.
	ErrDropped = errors.New("netdist: request dropped (deadline exceeded)")
	// ErrPartitioned models a network partition: the site cannot be
	// reached at all.
	ErrPartitioned = errors.New("netdist: site partitioned")
	// ErrInjected models a transient transport failure (connection
	// reset).
	ErrInjected = errors.New("netdist: injected transport error")
)

// faults is the per-site fault state of a Loopback.
type faults struct {
	partitioned bool
	latency     time.Duration
	dropNext    int // consume request, return ErrDropped, n times
	failNext    int // return ErrInjected, n times
}

// LoopbackStats counts traffic through the loopback, including faulted
// attempts (which a real wire would also carry).
type LoopbackStats struct {
	// Attempts counts RoundTrip calls per site, faulted ones included.
	Attempts map[string]int64
	// Delivered counts requests that reached the site's handler.
	Delivered map[string]int64
}

// Loopback is an in-process Transport: each site name maps to a Server
// whose Handle runs on the caller's goroutine. Requests and responses
// are round-tripped through the frame codec, so the loopback exercises
// exactly the bytes TCP would carry — plus deterministic fault
// injection, so retry/timeout/partition paths are testable without a
// flaky network.
//
// Faults are scripted, not probabilistic: Partition/Heal flip a site's
// reachability, DropNext/FailNext consume a fixed number of future
// requests, SetLatency delays every request (and times it out when the
// latency exceeds the caller's deadline).
type Loopback struct {
	mu     sync.Mutex
	sites  map[string]*Server
	faults map[string]*faults
	stats  LoopbackStats
}

// NewLoopback returns an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{
		sites:  map[string]*Server{},
		faults: map[string]*faults{},
		stats:  LoopbackStats{Attempts: map[string]int64{}, Delivered: map[string]int64{}},
	}
}

// AddSite registers srv under the site name.
func (lb *Loopback) AddSite(site string, srv *Server) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.sites[site] = srv
	if lb.faults[site] == nil {
		lb.faults[site] = &faults{}
	}
}

// fault returns the site's fault state, creating it if absent. Caller
// holds lb.mu.
func (lb *Loopback) fault(site string) *faults {
	f := lb.faults[site]
	if f == nil {
		f = &faults{}
		lb.faults[site] = f
	}
	return f
}

// Partition makes the site unreachable until Heal.
func (lb *Loopback) Partition(site string) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.fault(site).partitioned = true
}

// Heal reconnects a partitioned site.
func (lb *Loopback) Heal(site string) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.fault(site).partitioned = false
}

// SetLatency delays every future request to the site by d.
func (lb *Loopback) SetLatency(site string, d time.Duration) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.fault(site).latency = d
}

// DropNext makes the next n requests to the site vanish (deadline
// exceeded, no response).
func (lb *Loopback) DropNext(site string, n int) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.fault(site).dropNext += n
}

// FailNext makes the next n requests to the site fail with a transport
// error before delivery.
func (lb *Loopback) FailNext(site string, n int) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.fault(site).failNext += n
}

// Stats returns a deep copy of the traffic counters.
func (lb *Loopback) Stats() LoopbackStats {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	out := LoopbackStats{
		Attempts:  make(map[string]int64, len(lb.stats.Attempts)),
		Delivered: make(map[string]int64, len(lb.stats.Delivered)),
	}
	for k, v := range lb.stats.Attempts {
		out.Attempts[k] = v
	}
	for k, v := range lb.stats.Delivered {
		out.Delivered[k] = v
	}
	return out
}

// RoundTrip applies the site's scripted faults, then hands the request —
// serialized and reparsed through the frame codec — to the site's
// server.
func (lb *Loopback) RoundTrip(site string, req *Request, timeout time.Duration) (*Response, error) {
	lb.mu.Lock()
	srv, ok := lb.sites[site]
	lb.stats.Attempts[site]++
	if !ok {
		lb.mu.Unlock()
		return nil, fmt.Errorf("netdist: unknown site %q", site)
	}
	f := lb.fault(site)
	switch {
	case f.partitioned:
		lb.mu.Unlock()
		return nil, ErrPartitioned
	case f.failNext > 0:
		f.failNext--
		lb.mu.Unlock()
		return nil, ErrInjected
	case f.dropNext > 0:
		f.dropNext--
		lb.mu.Unlock()
		return nil, ErrDropped
	}
	latency := f.latency
	lb.stats.Delivered[site]++
	lb.mu.Unlock()

	if latency > 0 {
		if timeout > 0 && latency >= timeout {
			// The response cannot arrive before the deadline; model the
			// client giving up at the deadline without burning real wall
			// clock on the undeliverable remainder.
			time.Sleep(timeout)
			return nil, ErrDropped
		}
		time.Sleep(latency)
	}
	wired, err := reencode(req)
	if err != nil {
		return nil, err
	}
	resp := srv.Handle(wired)
	var out Response
	if err := roundTripJSON(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Close is a no-op: loopback holds no OS resources.
func (lb *Loopback) Close() error { return nil }
