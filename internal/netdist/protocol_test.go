package netdist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func TestFrameRoundTrip(t *testing.T) {
	req := &Request{ID: 7, Type: OpFetch, Relation: "emp", Col: 2, Value: "#50"}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || got.Type != req.Type || got.Relation != req.Relation || got.Col != req.Col || got.Value != req.Value {
		t.Errorf("round trip: got %+v, want %+v", got, *req)
	}
}

func TestFrameRejectsOversizedAndTruncated(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if err := ReadFrame(bytes.NewReader(hdr[:]), &Request{}); err == nil {
		t.Error("oversized frame accepted")
	}
	// A declared length longer than the stream must error, not hang or
	// succeed.
	binary.BigEndian.PutUint32(hdr[:], 100)
	short := append(hdr[:], []byte(`{"id":1}`)...)
	if err := ReadFrame(bytes.NewReader(short), &Request{}); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []ast.Value{
		ast.Int(42),
		ast.Int(-3),
		ast.Rat(1, 3),
		ast.Float(2.5),
		ast.Str("toy"),
		ast.Str("New York"),
		ast.Str(""),
		ast.Str("#42"),  // a symbol that looks like a number encoding
		ast.Str("$odd"), // a symbol that looks like a string encoding
	}
	for _, v := range vals {
		got, err := DecodeValue(EncodeValue(v))
		if err != nil {
			t.Errorf("decode(encode(%v)): %v", v, err)
			continue
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %q -> %v", v, EncodeValue(v), got)
		}
	}
	for _, bad := range []string{"", "42", "#", "#x/y"} {
		if _, err := DecodeValue(bad); err == nil {
			t.Errorf("DecodeValue(%q) accepted", bad)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tup := relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))
	got, err := DecodeTuple(EncodeTuple(tup))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tup) {
		t.Errorf("tuple round trip: got %v, want %v", got, tup)
	}
}

func newSiteStore(t *testing.T, facts string) *store.Store {
	t.Helper()
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram(facts)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestServerScanFetchPing(t *testing.T) {
	db := newSiteStore(t, "emp(ann,toy,50). emp(bob,shoe,60). dept(toy).")
	srv := NewServer(db, []string{"emp"})

	resp := srv.Handle(&Request{ID: 1, Type: OpScan, Relation: "emp"})
	if !resp.OK || len(resp.Tuples) != 2 || resp.Arity != 3 || resp.ID != 1 {
		t.Fatalf("scan: %+v", resp)
	}
	// dept is not served.
	if resp := srv.Handle(&Request{Type: OpScan, Relation: "dept"}); resp.OK {
		t.Error("scan of unserved relation succeeded")
	}
	resp = srv.Handle(&Request{Type: OpFetch, Relation: "emp", Col: 1, Value: EncodeValue(ast.Str("toy"))})
	if !resp.OK || len(resp.Tuples) != 1 {
		t.Fatalf("fetch: %+v", resp)
	}
	if resp := srv.Handle(&Request{Type: OpFetch, Relation: "emp", Col: 9, Value: "$toy"}); resp.OK {
		t.Error("out-of-range column accepted")
	}
	resp = srv.Handle(&Request{Type: OpPing})
	if !resp.OK || resp.Relations["emp"] != 3 {
		t.Fatalf("ping: %+v", resp)
	}
	if _, ok := resp.Relations["dept"]; ok {
		t.Error("ping leaked unserved relation")
	}

	st := srv.Stats()
	if st.Requests[OpScan] != 2 || st.TuplesSent["emp"] != 3 || st.Errors != 2 {
		t.Errorf("stats: %+v", st)
	}
	// The stats copy is deep.
	st.TuplesSent["emp"] = 999
	if srv.Stats().TuplesSent["emp"] == 999 {
		t.Error("Stats leaked the live map")
	}
}

func TestServerEval(t *testing.T) {
	db := newSiteStore(t, "r(3). r(7).")
	srv := NewServer(db, []string{"r"})
	resp := srv.Handle(&Request{Type: OpEval, Program: "hit :- r(X) & X > 5.", Goal: "hit"})
	if !resp.OK || !resp.Holds {
		t.Fatalf("eval: %+v", resp)
	}
	resp = srv.Handle(&Request{Type: OpEval, Program: "hit :- r(X) & X > 50.", Goal: "hit"})
	if !resp.OK || resp.Holds {
		t.Fatalf("eval: %+v", resp)
	}
	// Subqueries may not read unserved relations.
	if resp := srv.Handle(&Request{Type: OpEval, Program: "hit :- secret(X).", Goal: "hit"}); resp.OK {
		t.Error("eval read an unserved relation")
	}
	if resp := srv.Handle(&Request{Type: OpEval, Program: "junk((", Goal: "hit"}); resp.OK {
		t.Error("unparseable program accepted")
	}
}

func TestServerApplyAndReads(t *testing.T) {
	db := newSiteStore(t, "r(1).")
	srv := NewServer(db, nil)
	resp := srv.Handle(&Request{Type: OpApply, Relation: "r", Insert: true, Tuple: EncodeTuple(relation.Ints(2))})
	if !resp.OK || !resp.Changed {
		t.Fatalf("apply insert: %+v", resp)
	}
	resp = srv.Handle(&Request{Type: OpApply, Relation: "r", Insert: true, Tuple: EncodeTuple(relation.Ints(2))})
	if !resp.OK || resp.Changed {
		t.Fatalf("duplicate insert reported change: %+v", resp)
	}
	resp = srv.Handle(&Request{Type: OpApply, Relation: "r", Tuple: EncodeTuple(relation.Ints(1))})
	if !resp.OK || !resp.Changed {
		t.Fatalf("apply delete: %+v", resp)
	}
	srv.Handle(&Request{Type: OpScan, Relation: "r"})
	resp = srv.Handle(&Request{Type: OpReads})
	if !resp.OK || resp.Reads["r"] != 1 {
		t.Fatalf("reads: %+v", resp)
	}
	if resp := srv.Handle(&Request{Type: "bogus"}); resp.OK {
		t.Error("unknown request type accepted")
	}
}

func TestSiteErrorMatchesSentinel(t *testing.T) {
	err := &SiteError{Site: "s1", Err: ErrPartitioned}
	if !errors.Is(err, ErrSiteUnavailable) {
		t.Error("SiteError does not match ErrSiteUnavailable")
	}
	if !errors.Is(err, ErrPartitioned) {
		t.Error("SiteError does not unwrap to its cause")
	}
	if !strings.Contains(err.Error(), "s1") {
		t.Error("SiteError message lacks the site")
	}
}
