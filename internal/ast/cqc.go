package ast

import (
	"fmt"
)

// CQC is a conjunctive-query constraint in the normal form of Section 5:
//
//	panic :- l & r1 & … & rn & c1 & … & ck
//
// with one subgoal over the designated local predicate, any number of
// remote subgoals, and arithmetic comparisons. The paper's standing
// assumptions are enforced by Check:
//
//   - comparison variables occur in l or some ri;
//   - no variable appears twice among the ordinary subgoals;
//   - no constants appear among the ordinary subgoals;
//   - exactly one subgoal uses the local predicate.
//
// Normalize rewrites an arbitrary conjunctive panic rule into this form by
// replacing repeated variables and constants with fresh variables equated
// by arithmetic equality subgoals, exactly as the paper prescribes.
type CQC struct {
	Rule      *Rule
	LocalPred string
}

// NewCQC wraps rule as a CQC with the given local predicate and verifies
// the Section 5 normal form.
func NewCQC(rule *Rule, localPred string) (*CQC, error) {
	c := &CQC{Rule: rule, LocalPred: localPred}
	if err := c.Check(); err != nil {
		return nil, err
	}
	return c, nil
}

// Check verifies the Section 5 normal-form conditions.
func (c *CQC) Check() error {
	r := c.Rule
	if r.Head.Pred != PanicPred || r.Head.Arity() != 0 {
		return fmt.Errorf("ast: CQC head must be 0-ary %s, got %s", PanicPred, r.Head)
	}
	if r.HasNegation() {
		return fmt.Errorf("ast: CQC may not contain negated subgoals")
	}
	locals := 0
	seen := map[string]bool{}
	ordinaryVars := map[string]bool{}
	for _, a := range r.PositiveAtoms() {
		if a.Pred == c.LocalPred {
			locals++
		}
		for _, t := range a.Args {
			if t.IsConst() {
				return fmt.Errorf("ast: CQC ordinary subgoal %s contains constant %s (normalize first)", a, t)
			}
			if seen[t.Var] {
				return fmt.Errorf("ast: variable %s appears twice among ordinary subgoals (normalize first)", t.Var)
			}
			seen[t.Var] = true
			ordinaryVars[t.Var] = true
		}
	}
	if locals != 1 {
		return fmt.Errorf("ast: CQC must have exactly one subgoal over local predicate %s, found %d", c.LocalPred, locals)
	}
	for _, cmp := range r.Comparisons() {
		for _, v := range cmp.Vars(nil) {
			if !ordinaryVars[v] {
				return fmt.Errorf("ast: comparison variable %s does not occur in an ordinary subgoal", v)
			}
		}
	}
	return nil
}

// LocalAtom returns the single subgoal over the local predicate.
func (c *CQC) LocalAtom() Atom {
	for _, a := range c.Rule.PositiveAtoms() {
		if a.Pred == c.LocalPred {
			return a
		}
	}
	panic("ast: CQC without local subgoal") // Check prevents this
}

// RemoteAtoms returns the ordinary subgoals over remote predicates.
func (c *CQC) RemoteAtoms() []Atom {
	var out []Atom
	for _, a := range c.Rule.PositiveAtoms() {
		if a.Pred != c.LocalPred {
			out = append(out, a)
		}
	}
	return out
}

// RemoteVars returns the variables that occur in no local subgoal — the
// "remote variables" of Section 6 — in sorted order.
func (c *CQC) RemoteVars() []string {
	local := map[string]bool{}
	for _, v := range c.LocalAtom().Vars(nil) {
		local[v] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, a := range c.RemoteAtoms() {
		for _, v := range a.Vars(nil) {
			if !local[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Clone returns a deep copy.
func (c *CQC) Clone() *CQC { return &CQC{Rule: c.Rule.Clone(), LocalPred: c.LocalPred} }

// String renders the underlying rule.
func (c *CQC) String() string { return c.Rule.String() }

// NormalizeCQC rewrites an arbitrary conjunctive panic rule (positive
// atoms + comparisons, no negation) into Section 5 normal form over the
// given local predicate: repeated variables and constants in ordinary
// subgoals are replaced by fresh variables constrained by equality
// comparisons. Fresh variables are named Xn# for n = 0,1,… (the parser
// forbids '#' in user variable names, so no capture is possible).
func NormalizeCQC(rule *Rule, localPred string) (*CQC, error) {
	if rule.HasNegation() {
		return nil, fmt.Errorf("ast: cannot normalize rule with negated subgoals into a CQC")
	}
	if rule.Head.Pred != PanicPred || rule.Head.Arity() != 0 {
		return nil, fmt.Errorf("ast: CQC head must be 0-ary %s", PanicPred)
	}
	fresh := 0
	newVar := func() Term {
		t := V(fmt.Sprintf("X%d#", fresh))
		fresh++
		return t
	}
	seen := map[string]bool{}
	var body []Literal
	var eqs []Literal
	locals := 0
	for _, l := range rule.Body {
		if l.IsComp() {
			body = append(body, l)
			continue
		}
		a := l.Atom
		if a.Pred == localPred {
			locals++
		}
		args := make([]Term, len(a.Args))
		for i, t := range a.Args {
			switch {
			case t.IsConst():
				v := newVar()
				args[i] = v
				eqs = append(eqs, Cmp(NewComparison(v, Eq, t)))
			case seen[t.Var]:
				v := newVar()
				args[i] = v
				eqs = append(eqs, Cmp(NewComparison(v, Eq, t)))
			default:
				seen[t.Var] = true
				args[i] = t
			}
		}
		body = append(body, Pos(Atom{Pred: a.Pred, Args: args}))
	}
	if locals != 1 {
		return nil, fmt.Errorf("ast: rule must have exactly one subgoal over local predicate %s, found %d", localPred, locals)
	}
	body = append(body, eqs...)
	return NewCQC(&Rule{Head: rule.Head, Body: body}, localPred)
}
