// Package ast defines the abstract syntax of constraint queries: the
// datalog-with-comparisons language of Gupta, Sagiv, Ullman and Widom,
// "Constraint Checking with Partial Information" (PODS 1994).
//
// A constraint is a program whose distinguished 0-ary goal predicate is
// "panic" (Section 2 of the paper): the database satisfies the constraint
// exactly when the program derives nothing for panic.
//
// Terms are variables or constants; atoms are predicates applied to terms;
// a rule body is a conjunction of positive atoms, negated atoms, and
// arithmetic comparisons. A program is a list of rules.
package ast

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"
)

// ValueKind discriminates the constant domains.
type ValueKind int

const (
	// NumberValue is a rational numeric constant (integers and decimals).
	NumberValue ValueKind = iota
	// StringValue is a symbolic constant such as toy or "New York".
	StringValue
)

// Value is a constant in the database domain. Numbers are exact rationals
// so that the arithmetic decision procedures need no floating-point care;
// strings are symbolic constants ordered lexicographically.
//
// The comparison domain is treated as a dense total order: all numbers
// precede all strings, numbers compare numerically, strings compare
// lexicographically. Density is the standard assumption under which the
// paper's comparison reasoning (Theorem 5.1, Section 6) is complete.
type Value struct {
	Kind ValueKind
	Num  *big.Rat // set when Kind == NumberValue
	Str  string   // set when Kind == StringValue
}

// Int returns a numeric Value for n.
func Int(n int64) Value { return Value{Kind: NumberValue, Num: new(big.Rat).SetInt64(n)} }

// Float returns a numeric Value for f.
func Float(f float64) Value { return Value{Kind: NumberValue, Num: new(big.Rat).SetFloat64(f)} }

// Rat returns a numeric Value for the rational p/q. It panics if q == 0.
func Rat(p, q int64) Value { return Value{Kind: NumberValue, Num: big.NewRat(p, q)} }

// Str returns a string (symbolic) Value.
func Str(s string) Value { return Value{Kind: StringValue, Str: s} }

// Compare orders v against w in the global dense total order:
// numbers first (numerically), then strings (lexicographically).
// It returns -1, 0, or +1.
func (v Value) Compare(w Value) int {
	if v.Kind != w.Kind {
		if v.Kind == NumberValue {
			return -1
		}
		return 1
	}
	if v.Kind == NumberValue {
		// Integer fast path: big.Rat.Cmp cross-multiplies via scaleDenom,
		// allocating on every call, even when both sides are integers —
		// which is nearly every comparison the evaluator runs. Integral
		// rationals compare by numerator alone, allocation-free.
		if v.Num.IsInt() && w.Num.IsInt() {
			return v.Num.Num().Cmp(w.Num.Num())
		}
		return v.Num.Cmp(w.Num)
	}
	return strings.Compare(v.Str, w.Str)
}

// Equal reports whether v and w are the same constant.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Key returns a canonical string encoding of v, suitable for map keys.
// Distinct constants have distinct keys.
func (v Value) Key() string {
	if v.Kind == NumberValue {
		return "#" + v.Num.RatString()
	}
	return "$" + v.Str
}

// String renders v in source syntax: numbers as decimals or p/q, strings
// bare when they look like a lower-case identifier, quoted otherwise.
func (v Value) String() string {
	if v.Kind == NumberValue {
		if v.Num.IsInt() {
			return v.Num.Num().String()
		}
		if f, exact := v.Num.Float64(); exact {
			return strconv.FormatFloat(f, 'g', -1, 64)
		}
		return v.Num.RatString()
	}
	if isBareIdent(v.Str) {
		return v.Str
	}
	return strconv.Quote(v.Str)
}

func isBareIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r >= 'A' && r <= 'Z'):
		default:
			return false
		}
	}
	return s[0] >= 'a' && s[0] <= 'z'
}

// Term is a variable or a constant. Following the paper's Prolog
// convention, variable names begin with an upper-case letter and constants
// with a lower-case letter or a digit.
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant value; meaningful only when Var == "".
	Const Value
}

// V returns a variable term named name.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term holding v.
func C(v Value) Term { return Term{Const: v} }

// CInt returns a constant term for the integer n.
func CInt(n int64) Term { return C(Int(n)) }

// CStr returns a constant term for the symbol s.
func CStr(s string) Term { return C(Str(s)) }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Var == "" }

// Equal reports whether two terms are syntactically identical.
func (t Term) Equal(u Term) bool {
	if t.IsVar() != u.IsVar() {
		return false
	}
	if t.IsVar() {
		return t.Var == u.Var
	}
	return t.Const.Equal(u.Const)
}

// Key returns a canonical map key for t, distinct across all terms.
func (t Term) Key() string {
	if t.IsVar() {
		return "V" + t.Var
	}
	return "C" + t.Const.Key()
}

// String renders the term in source syntax.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Subst is a mapping from variable names to terms. Applying a Subst
// replaces every variable that has a binding; unbound variables are left
// untouched.
type Subst map[string]Term

// Apply returns t with s applied. Bindings are not chased transitively;
// callers that need idempotent substitutions should build them resolved.
func (s Subst) Apply(t Term) Term {
	if t.IsVar() {
		if b, ok := s[t.Var]; ok {
			return b
		}
	}
	return t
}

// Compose returns a substitution equivalent to applying s first and then
// u: for every binding v→t in s the result maps v→u(t), and bindings of u
// on variables not bound by s are kept.
func (s Subst) Compose(u Subst) Subst {
	out := make(Subst, len(s)+len(u))
	for v, t := range s {
		out[v] = u.Apply(t)
	}
	for v, t := range u {
		if _, ok := out[v]; !ok {
			out[v] = t
		}
	}
	return out
}

// Clone returns a copy of s.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for v, t := range s {
		out[v] = t
	}
	return out
}

// Unify attempts to unify the term lists a and b, extending base (which
// may be nil). Variables bind to terms; two constants unify only when
// equal. It returns the extended substitution, or false when unification
// fails. Occurs checks are unnecessary because terms are flat.
func Unify(a, b []Term, base Subst) (Subst, bool) {
	if len(a) != len(b) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = Subst{}
	}
	for i := range a {
		x, y := resolve(s, a[i]), resolve(s, b[i])
		switch {
		case x.IsVar() && y.IsVar():
			if x.Var != y.Var {
				s[x.Var] = y
			}
		case x.IsVar():
			s[x.Var] = y
		case y.IsVar():
			s[y.Var] = x
		default:
			if !x.Const.Equal(y.Const) {
				return nil, false
			}
		}
	}
	return s, true
}

// resolve chases bindings in s until reaching an unbound variable or a
// constant. Substitutions built by Unify have no cycles.
func resolve(s Subst, t Term) Term {
	for t.IsVar() {
		b, ok := s[t.Var]
		if !ok {
			return t
		}
		t = b
	}
	return t
}

// Resolve chases t through s to its final binding.
func (s Subst) Resolve(t Term) Term { return resolve(s, t) }

var _ = fmt.Stringer(Term{})
