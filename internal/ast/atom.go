package ast

import (
	"fmt"
	"sort"
	"strings"
)

// PanicPred is the distinguished 0-ary goal predicate of every constraint
// query (Section 2 of the paper).
const PanicPred = "panic"

// Atom is a predicate applied to a list of terms, e.g. emp(E, D, S).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Apply returns the atom with substitution s applied to every argument.
func (a Atom) Apply(s Subst) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Resolve(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports syntactic equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Vars appends the names of variables occurring in a to dst, in order of
// occurrence, possibly with duplicates.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// String renders the atom in source syntax.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// CompOp is an arithmetic comparison operator.
type CompOp int

// The six comparison operators of the constraint language.
const (
	Lt CompOp = iota // <
	Le               // <=
	Eq               // =
	Ne               // <>
	Ge               // >=
	Gt               // >
)

// String renders the operator in source syntax.
func (op CompOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Ge:
		return ">="
	case Gt:
		return ">"
	}
	return fmt.Sprintf("CompOp(%d)", int(op))
}

// Negate returns the complement of op over a total order:
// ¬(<) is >=, ¬(=) is <>, and so on.
func (op CompOp) Negate() CompOp {
	switch op {
	case Lt:
		return Ge
	case Le:
		return Gt
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Ge:
		return Lt
	case Gt:
		return Le
	}
	panic("ast: invalid CompOp")
}

// Flip returns the operator with its operands swapped: x op y iff y Flip(op) x.
func (op CompOp) Flip() CompOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Ge:
		return Le
	case Gt:
		return Lt
	}
	return op // = and <> are symmetric
}

// Eval evaluates c1 op c2 over the global dense order on constants.
func (op CompOp) Eval(c1, c2 Value) bool {
	c := c1.Compare(c2)
	switch op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Ge:
		return c >= 0
	case Gt:
		return c > 0
	}
	panic("ast: invalid CompOp")
}

// Comparison is an arithmetic comparison subgoal such as S < 100.
type Comparison struct {
	Left  Term
	Right Term
	Op    CompOp
}

// NewComparison builds a comparison subgoal.
func NewComparison(l Term, op CompOp, r Term) Comparison {
	return Comparison{Left: l, Right: r, Op: op}
}

// Apply returns the comparison with s applied to both sides.
func (c Comparison) Apply(s Subst) Comparison {
	return Comparison{Left: s.Resolve(c.Left), Right: s.Resolve(c.Right), Op: c.Op}
}

// Equal reports syntactic equality.
func (c Comparison) Equal(d Comparison) bool {
	return c.Op == d.Op && c.Left.Equal(d.Left) && c.Right.Equal(d.Right)
}

// Negate returns the complementary comparison (¬(x<y) ≡ x>=y, …).
func (c Comparison) Negate() Comparison {
	return Comparison{Left: c.Left, Right: c.Right, Op: c.Op.Negate()}
}

// Ground reports whether both sides are constants, and if so the truth
// value of the comparison.
func (c Comparison) Ground() (value, ground bool) {
	if c.Left.IsConst() && c.Right.IsConst() {
		return c.Op.Eval(c.Left.Const, c.Right.Const), true
	}
	return false, false
}

// Vars appends the names of variables in c to dst.
func (c Comparison) Vars(dst []string) []string {
	if c.Left.IsVar() {
		dst = append(dst, c.Left.Var)
	}
	if c.Right.IsVar() {
		dst = append(dst, c.Right.Var)
	}
	return dst
}

// String renders the comparison in source syntax.
func (c Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Literal is one body subgoal: a positive atom, a negated atom, or a
// comparison. Exactly one of Atom (with Negated) or Comp is meaningful;
// IsComp discriminates.
type Literal struct {
	Atom    Atom
	Negated bool
	Comp    Comparison
	isComp  bool
}

// Pos returns a positive atom literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated atom literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Cmp returns a comparison literal.
func Cmp(c Comparison) Literal { return Literal{Comp: c, isComp: true} }

// IsComp reports whether the literal is an arithmetic comparison.
func (l Literal) IsComp() bool { return l.isComp }

// IsPos reports whether the literal is a positive (ordinary, unnegated) atom.
func (l Literal) IsPos() bool { return !l.isComp && !l.Negated }

// IsNeg reports whether the literal is a negated atom.
func (l Literal) IsNeg() bool { return !l.isComp && l.Negated }

// Apply returns the literal with substitution s applied.
func (l Literal) Apply(s Subst) Literal {
	if l.isComp {
		return Cmp(l.Comp.Apply(s))
	}
	return Literal{Atom: l.Atom.Apply(s), Negated: l.Negated}
}

// Equal reports syntactic equality.
func (l Literal) Equal(m Literal) bool {
	if l.isComp != m.isComp {
		return false
	}
	if l.isComp {
		return l.Comp.Equal(m.Comp)
	}
	return l.Negated == m.Negated && l.Atom.Equal(m.Atom)
}

// Vars appends the names of variables occurring in l to dst.
func (l Literal) Vars(dst []string) []string {
	if l.isComp {
		return l.Comp.Vars(dst)
	}
	return l.Atom.Vars(dst)
}

// String renders the literal in source syntax.
func (l Literal) String() string {
	switch {
	case l.isComp:
		return l.Comp.String()
	case l.Negated:
		return "not " + l.Atom.String()
	default:
		return l.Atom.String()
	}
}

// SortedVarSet returns the distinct variable names in the given literals,
// sorted, for deterministic iteration.
func SortedVarSet(lits []Literal) []string {
	seen := map[string]bool{}
	var names []string
	for _, l := range lits {
		for _, v := range l.Vars(nil) {
			if !seen[v] {
				seen[v] = true
				names = append(names, v)
			}
		}
	}
	sort.Strings(names)
	return names
}
