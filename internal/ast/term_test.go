package ast

import (
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Rat(1, 2), Float(0.5), 0},
		{Rat(1, 3), Rat(1, 2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Int(100), Str("a"), -1}, // numbers precede strings
		{Str(""), Int(-5), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueKeyDistinct(t *testing.T) {
	vals := []Value{Int(1), Int(2), Float(1.5), Str("1"), Str("a"), Str("#1"), Rat(3, 2)}
	keys := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := keys[k]; ok && !prev.Equal(v) {
			t.Errorf("key collision: %v and %v both map to %q", prev, v, k)
		}
		keys[k] = v
	}
	if Int(1).Key() == Str("1").Key() {
		t.Error("number 1 and string \"1\" must have distinct keys")
	}
	if Float(1.5).Key() != Rat(3, 2).Key() {
		t.Error("equal rationals must share a key")
	}
}

func TestValueCompareTotalOrderProperty(t *testing.T) {
	// Compare must be antisymmetric and transitive on a sampled domain.
	f := func(a, b, c int16) bool {
		x, y, z := Int(int64(a)), Int(int64(b)), Int(int64(c))
		if x.Compare(y) != -y.Compare(x) {
			return false
		}
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 && x.Compare(z) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		tm   Term
		want string
	}{
		{V("X"), "X"},
		{CInt(42), "42"},
		{CStr("toy"), "toy"},
		{CStr("New York"), `"New York"`},
		{CStr("Toy"), `"Toy"`}, // capitalized symbols must be quoted
		{C(Rat(1, 2)), "0.5"},
	}
	for _, c := range cases {
		if got := c.tm.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.tm, got, c.want)
		}
	}
}

func TestUnify(t *testing.T) {
	// l(X,Y,Y) against (a,b,b) unifies; against (a,b,c) fails.
	pat := []Term{V("X"), V("Y"), V("Y")}
	s, ok := Unify(pat, []Term{CStr("a"), CStr("b"), CStr("b")}, nil)
	if !ok {
		t.Fatal("expected unification to succeed")
	}
	if got := s.Resolve(V("X")); !got.Equal(CStr("a")) {
		t.Errorf("X resolved to %v, want a", got)
	}
	if got := s.Resolve(V("Y")); !got.Equal(CStr("b")) {
		t.Errorf("Y resolved to %v, want b", got)
	}
	if _, ok := Unify(pat, []Term{CStr("a"), CStr("b"), CStr("c")}, nil); ok {
		t.Error("expected unification of l(X,Y,Y) with (a,b,c) to fail")
	}
}

func TestUnifyVarVar(t *testing.T) {
	s, ok := Unify([]Term{V("X"), V("X")}, []Term{V("A"), CInt(7)}, nil)
	if !ok {
		t.Fatal("expected success")
	}
	if got := s.Resolve(V("A")); !got.Equal(CInt(7)) {
		t.Errorf("A resolved to %v, want 7", got)
	}
	if got := s.Resolve(V("X")); !got.Equal(CInt(7)) {
		t.Errorf("X resolved to %v, want 7", got)
	}
}

func TestUnifyLengthMismatch(t *testing.T) {
	if _, ok := Unify([]Term{V("X")}, []Term{V("X"), V("Y")}, nil); ok {
		t.Error("expected length mismatch to fail")
	}
}

func TestSubstCompose(t *testing.T) {
	s := Subst{"X": V("Y")}
	u := Subst{"Y": CInt(3), "Z": CInt(4)}
	c := s.Compose(u)
	if got := c.Apply(V("X")); !got.Equal(CInt(3)) {
		t.Errorf("compose: X -> %v, want 3", got)
	}
	if got := c.Apply(V("Z")); !got.Equal(CInt(4)) {
		t.Errorf("compose: Z -> %v, want 4", got)
	}
}

func TestCompOp(t *testing.T) {
	ops := []CompOp{Lt, Le, Eq, Ne, Ge, Gt}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %v changed it", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("double flip of %v changed it", op)
		}
		// x op y must equal y flip(op) x on samples.
		for _, xy := range [][2]int64{{1, 2}, {2, 2}, {3, 2}} {
			x, y := Int(xy[0]), Int(xy[1])
			if op.Eval(x, y) != op.Flip().Eval(y, x) {
				t.Errorf("%v: Eval(%v,%v) disagrees with flipped", op, x, y)
			}
			if op.Eval(x, y) == op.Negate().Eval(x, y) {
				t.Errorf("%v: negation not complementary on (%v,%v)", op, x, y)
			}
		}
	}
}

func TestRuleString(t *testing.T) {
	r := NewRule(NewAtom(PanicPred),
		Pos(NewAtom("emp", V("E"), V("D"), V("S"))),
		Neg(NewAtom("dept", V("D"))),
		Cmp(NewComparison(V("S"), Lt, CInt(100))),
	)
	want := "panic :- emp(E,D,S) & not dept(D) & S < 100."
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRuleCheckSafe(t *testing.T) {
	ok := NewRule(NewAtom("p", V("X")), Pos(NewAtom("q", V("X"))))
	if err := ok.CheckSafe(); err != nil {
		t.Errorf("safe rule rejected: %v", err)
	}
	badHead := NewRule(NewAtom("p", V("Y")), Pos(NewAtom("q", V("X"))))
	if err := badHead.CheckSafe(); err == nil {
		t.Error("unbound head variable accepted")
	}
	badNeg := NewRule(NewAtom(PanicPred), Pos(NewAtom("q", V("X"))), Neg(NewAtom("r", V("Z"))))
	if err := badNeg.CheckSafe(); err == nil {
		t.Error("unbound negated variable accepted")
	}
	badCmp := NewRule(NewAtom(PanicPred), Pos(NewAtom("q", V("X"))), Cmp(NewComparison(V("W"), Lt, CInt(1))))
	if err := badCmp.CheckSafe(); err == nil {
		t.Error("unbound comparison variable accepted")
	}
}

func TestProgramPreds(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom(PanicPred), Pos(NewAtom("boss", V("E"), V("E")))),
		NewRule(NewAtom("boss", V("E"), V("M")),
			Pos(NewAtom("emp", V("E"), V("D"), V("S"))),
			Pos(NewAtom("manager", V("D"), V("M")))),
		NewRule(NewAtom("boss", V("E"), V("F")),
			Pos(NewAtom("boss", V("E"), V("G"))),
			Pos(NewAtom("boss", V("G"), V("F")))),
	)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	idb := p.IDBPreds()
	if !idb["boss"] || !idb[PanicPred] || idb["emp"] {
		t.Errorf("IDBPreds wrong: %v", idb)
	}
	edb := p.EDBPreds()
	if len(edb) != 2 || edb[0] != "emp" || edb[1] != "manager" {
		t.Errorf("EDBPreds = %v, want [emp manager]", edb)
	}
	if n := len(p.RulesFor("boss")); n != 2 {
		t.Errorf("RulesFor(boss) = %d rules, want 2", n)
	}
}

func TestProgramValidateArity(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom(PanicPred), Pos(NewAtom("q", V("X")))),
		NewRule(NewAtom(PanicPred), Pos(NewAtom("q", V("X"), V("Y")))),
	)
	if err := p.Validate(); err == nil {
		t.Error("inconsistent arity accepted")
	}
}

func TestRenameApart(t *testing.T) {
	r := NewRule(NewAtom(PanicPred), Pos(NewAtom("r", V("U"), V("V"))))
	r2 := r.RenameApart("'")
	want := "panic :- r(U',V')."
	if got := r2.String(); got != want {
		t.Errorf("RenameApart = %q, want %q", got, want)
	}
	if r.String() != "panic :- r(U,V)." {
		t.Error("RenameApart mutated the original")
	}
}

func TestNormalizeCQC(t *testing.T) {
	// panic :- l(X,Y,Y) & r(Y,Z,X) with local l: the repeated Y becomes a
	// fresh equated variable (Example 5.4's constraint).
	rule := NewRule(NewAtom(PanicPred),
		Pos(NewAtom("l", V("X"), V("Y"), V("Y"))),
		Pos(NewAtom("r", V("Y"), V("Z"), V("X"))),
	)
	cqc, err := NormalizeCQC(rule, "l")
	if err != nil {
		t.Fatalf("NormalizeCQC: %v", err)
	}
	if err := cqc.Check(); err != nil {
		t.Fatalf("normalized CQC fails Check: %v", err)
	}
	if got := len(cqc.Rule.Comparisons()); got != 3 {
		t.Errorf("expected 3 equality comparisons (Y dup, Y dup, X dup), got %d: %s", got, cqc)
	}
	// Constants must also be lifted.
	rule2 := NewRule(NewAtom(PanicPred),
		Pos(NewAtom("l", V("X"), CInt(5))),
		Pos(NewAtom("r", V("Z"))),
	)
	cqc2, err := NormalizeCQC(rule2, "l")
	if err != nil {
		t.Fatalf("NormalizeCQC with constant: %v", err)
	}
	if err := cqc2.Check(); err != nil {
		t.Fatalf("normalized CQC fails Check: %v", err)
	}
}

func TestCQCRemoteVars(t *testing.T) {
	// Forbidden intervals (Example 5.3): only Z is remote.
	rule := NewRule(NewAtom(PanicPred),
		Pos(NewAtom("l", V("X"), V("Y"))),
		Pos(NewAtom("r", V("Z"))),
		Cmp(NewComparison(V("X"), Le, V("Z"))),
		Cmp(NewComparison(V("Z"), Le, V("Y"))),
	)
	cqc, err := NewCQC(rule, "l")
	if err != nil {
		t.Fatalf("NewCQC: %v", err)
	}
	rv := cqc.RemoteVars()
	if len(rv) != 1 || rv[0] != "Z" {
		t.Errorf("RemoteVars = %v, want [Z]", rv)
	}
	if got := cqc.LocalAtom().String(); got != "l(X,Y)" {
		t.Errorf("LocalAtom = %s", got)
	}
	if got := len(cqc.RemoteAtoms()); got != 1 {
		t.Errorf("RemoteAtoms count = %d", got)
	}
}

func TestCQCCheckRejects(t *testing.T) {
	cases := []*Rule{
		// repeated variable
		NewRule(NewAtom(PanicPred), Pos(NewAtom("l", V("X"), V("X"))), Pos(NewAtom("r", V("Z")))),
		// constant in ordinary subgoal
		NewRule(NewAtom(PanicPred), Pos(NewAtom("l", V("X"), CInt(1))), Pos(NewAtom("r", V("Z")))),
		// negation
		NewRule(NewAtom(PanicPred), Pos(NewAtom("l", V("X"))), Neg(NewAtom("r", V("X")))),
		// two local subgoals
		NewRule(NewAtom(PanicPred), Pos(NewAtom("l", V("X"))), Pos(NewAtom("l", V("Y")))),
	}
	for i, r := range cases {
		if _, err := NewCQC(r, "l"); err == nil {
			t.Errorf("case %d: invalid CQC accepted: %s", i, r)
		}
	}
}
