package ast

import "testing"

func TestAtomEqual(t *testing.T) {
	a := NewAtom("p", V("X"), CInt(1))
	if !a.Equal(NewAtom("p", V("X"), CInt(1))) {
		t.Error("identical atoms unequal")
	}
	for _, other := range []Atom{
		NewAtom("q", V("X"), CInt(1)),
		NewAtom("p", V("Y"), CInt(1)),
		NewAtom("p", V("X")),
		NewAtom("p", V("X"), CInt(2)),
	} {
		if a.Equal(other) {
			t.Errorf("%s equal to %s", a, other)
		}
	}
}

func TestCompOpStringAll(t *testing.T) {
	want := map[CompOp]string{Lt: "<", Le: "<=", Eq: "=", Ne: "<>", Ge: ">=", Gt: ">"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d prints %q, want %q", int(op), op.String(), s)
		}
	}
	if CompOp(99).String() == "" {
		t.Error("invalid op must still print something")
	}
}

func TestComparisonHelpers(t *testing.T) {
	c := NewComparison(V("X"), Lt, CInt(5))
	got := c.Apply(Subst{"X": CInt(3)})
	if !got.Left.Equal(CInt(3)) {
		t.Errorf("Apply = %v", got)
	}
	v, ground := got.Ground()
	if !ground || !v {
		t.Errorf("Ground(3<5) = %v,%v", v, ground)
	}
	if _, ground := c.Ground(); ground {
		t.Error("non-ground comparison claimed ground")
	}
	if !c.Equal(NewComparison(V("X"), Lt, CInt(5))) || c.Equal(c.Negate()) {
		t.Error("Comparison.Equal wrong")
	}
	if c.Negate().Op != Ge {
		t.Errorf("Negate = %v", c.Negate())
	}
	if vs := c.Vars(nil); len(vs) != 1 || vs[0] != "X" {
		t.Errorf("Vars = %v", vs)
	}
}

func TestLiteralHelpers(t *testing.T) {
	p := Pos(NewAtom("p", V("X")))
	n := Neg(NewAtom("p", V("X")))
	cmp := Cmp(NewComparison(V("X"), Lt, V("Y")))
	if p.Equal(n) || p.Equal(cmp) || !p.Equal(Pos(NewAtom("p", V("X")))) {
		t.Error("Literal.Equal wrong")
	}
	if got := cmp.Apply(Subst{"X": CInt(1)}); !got.Comp.Left.Equal(CInt(1)) {
		t.Errorf("Literal.Apply on comparison = %v", got)
	}
	if vs := cmp.Vars(nil); len(vs) != 2 {
		t.Errorf("Vars = %v", vs)
	}
	set := SortedVarSet([]Literal{p, n, cmp})
	if len(set) != 2 || set[0] != "X" || set[1] != "Y" {
		t.Errorf("SortedVarSet = %v", set)
	}
}

func TestRuleHelpers(t *testing.T) {
	f := Fact(NewAtom("dept", CStr("toy")))
	if !f.IsFact() || f.HasComparison() || f.HasNegation() {
		t.Error("fact helpers wrong")
	}
	r := NewRule(NewAtom(PanicPred),
		Pos(NewAtom("p", V("X"))),
		Cmp(NewComparison(V("X"), Gt, CInt(0))))
	if !r.HasComparison() {
		t.Error("HasComparison missed")
	}
	c := r.Clone()
	if !c.Equal(r) {
		t.Error("clone unequal")
	}
	c.Body[0].Atom.Pred = "q"
	if c.Equal(r) {
		t.Error("clone shares structure with original")
	}
	if r.Body[0].Atom.Pred != "p" {
		t.Error("mutating clone changed original")
	}
}

func TestProgramHelpers(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom(PanicPred), Pos(NewAtom("emp", V("E"), V("D"))), Neg(NewAtom("dept", V("D")))),
	)
	if !p.HasNegation() || p.HasComparison() {
		t.Error("program feature detection wrong")
	}
	preds := p.Preds()
	if preds["emp"] != 2 || preds["dept"] != 1 || preds[PanicPred] != 0 {
		t.Errorf("Preds = %v", preds)
	}
	c := p.Clone()
	c.Rules[0].Body[0].Atom.Pred = "x"
	if p.Rules[0].Body[0].Atom.Pred != "emp" {
		t.Error("program clone shares rules")
	}
}

func TestCQCCloneString(t *testing.T) {
	rule := NewRule(NewAtom(PanicPred),
		Pos(NewAtom("l", V("X"))),
		Pos(NewAtom("r", V("Z"))),
		Cmp(NewComparison(V("X"), Le, V("Z"))))
	cqc, err := NewCQC(rule, "l")
	if err != nil {
		t.Fatal(err)
	}
	cl := cqc.Clone()
	if cl.String() != cqc.String() || cl.LocalPred != "l" {
		t.Error("CQC clone differs")
	}
	cl.Rule.Body[0].Atom.Pred = "m"
	if cqc.Rule.Body[0].Atom.Pred != "l" {
		t.Error("CQC clone shares rule")
	}
}

func TestZeroAryAtomString(t *testing.T) {
	if got := NewAtom(PanicPred).String(); got != "panic" {
		t.Errorf("0-ary atom prints %q", got)
	}
}
