package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is head :- body. A fact is a rule with an empty body and a ground
// head.
type Rule struct {
	Head Atom
	Body []Literal
}

// NewRule builds a rule.
func NewRule(head Atom, body ...Literal) *Rule { return &Rule{Head: head, Body: body} }

// Fact builds a bodiless rule.
func Fact(head Atom) *Rule { return &Rule{Head: head} }

// IsFact reports whether the rule has an empty body.
func (r *Rule) IsFact() bool { return len(r.Body) == 0 }

// PositiveAtoms returns the ordinary (positive, non-comparison) body atoms —
// O(C) in the paper's notation for single-rule constraints.
func (r *Rule) PositiveAtoms() []Atom {
	var out []Atom
	for _, l := range r.Body {
		if l.IsPos() {
			out = append(out, l.Atom)
		}
	}
	return out
}

// NegatedAtoms returns the negated body atoms.
func (r *Rule) NegatedAtoms() []Atom {
	var out []Atom
	for _, l := range r.Body {
		if l.IsNeg() {
			out = append(out, l.Atom)
		}
	}
	return out
}

// Comparisons returns the comparison subgoals — A(C) in the paper's
// notation for single-rule constraints.
func (r *Rule) Comparisons() []Comparison {
	var out []Comparison
	for _, l := range r.Body {
		if l.IsComp() {
			out = append(out, l.Comp)
		}
	}
	return out
}

// HasNegation reports whether any body literal is a negated atom.
func (r *Rule) HasNegation() bool {
	for _, l := range r.Body {
		if l.IsNeg() {
			return true
		}
	}
	return false
}

// HasComparison reports whether any body literal is a comparison.
func (r *Rule) HasComparison() bool {
	for _, l := range r.Body {
		if l.IsComp() {
			return true
		}
	}
	return false
}

// Vars returns the distinct variables of the rule (head and body), sorted.
func (r *Rule) Vars() []string {
	seen := map[string]bool{}
	var names []string
	add := func(vs []string) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				names = append(names, v)
			}
		}
	}
	add(r.Head.Vars(nil))
	for _, l := range r.Body {
		add(l.Vars(nil))
	}
	sort.Strings(names)
	return names
}

// Apply returns a copy of the rule with substitution s applied throughout.
func (r *Rule) Apply(s Subst) *Rule {
	body := make([]Literal, len(r.Body))
	for i, l := range r.Body {
		body[i] = l.Apply(s)
	}
	return &Rule{Head: r.Head.Apply(s), Body: body}
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule { return r.Apply(Subst{}) }

// Equal reports syntactic equality (same literal order).
func (r *Rule) Equal(o *Rule) bool {
	if !r.Head.Equal(o.Head) || len(r.Body) != len(o.Body) {
		return false
	}
	for i := range r.Body {
		if !r.Body[i].Equal(o.Body[i]) {
			return false
		}
	}
	return true
}

// CheckSafe verifies range restriction: every head variable, every
// variable of a negated atom, and every comparison variable must occur in
// some positive body atom. The paper assumes this throughout (Section 5
// states it explicitly for comparison variables).
func (r *Rule) CheckSafe() error {
	bound := map[string]bool{}
	for _, a := range r.PositiveAtoms() {
		for _, v := range a.Vars(nil) {
			bound[v] = true
		}
	}
	check := func(vs []string, what string) error {
		for _, v := range vs {
			if !bound[v] {
				return fmt.Errorf("ast: unsafe rule %s: variable %s in %s does not occur in a positive subgoal", r, v, what)
			}
		}
		return nil
	}
	if err := check(r.Head.Vars(nil), "head"); err != nil {
		return err
	}
	for _, a := range r.NegatedAtoms() {
		if err := check(a.Vars(nil), "negated subgoal "+a.String()); err != nil {
			return err
		}
	}
	for _, c := range r.Comparisons() {
		if err := check(c.Vars(nil), "comparison "+c.String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the rule in source syntax, terminated by a period.
func (r *Rule) String() string {
	if r.IsFact() {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, " & ") + "."
}

// Program is a list of rules. A constraint query is a Program whose goal
// predicate is panic; a conjunctive-query constraint is a Program with a
// single panic rule over database predicates.
type Program struct {
	Rules []*Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...*Rule) *Program { return &Program{Rules: rules} }

// Clone returns a deep copy.
func (p *Program) Clone() *Program {
	rules := make([]*Rule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = r.Clone()
	}
	return &Program{Rules: rules}
}

// IDBPreds returns the set of intensional predicates: those appearing in
// some rule head.
func (p *Program) IDBPreds() map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// EDBPreds returns the sorted extensional predicates: those appearing in
// rule bodies but never in a head.
func (p *Program) EDBPreds() []string {
	idb := p.IDBPreds()
	seen := map[string]bool{}
	var out []string
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.IsComp() {
				continue
			}
			if pred := l.Atom.Pred; !idb[pred] && !seen[pred] {
				seen[pred] = true
				out = append(out, pred)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Preds returns every predicate of the program with its arity, sorted by
// name. Inconsistent arities for one predicate are reported by Validate.
func (p *Program) Preds() map[string]int {
	out := map[string]int{}
	note := func(a Atom) {
		if _, ok := out[a.Pred]; !ok {
			out[a.Pred] = a.Arity()
		}
	}
	for _, r := range p.Rules {
		note(r.Head)
		for _, l := range r.Body {
			if !l.IsComp() {
				note(l.Atom)
			}
		}
	}
	return out
}

// RulesFor returns the rules whose head predicate is pred, in order.
func (p *Program) RulesFor(pred string) []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// HasNegation reports whether any rule uses a negated subgoal.
func (p *Program) HasNegation() bool {
	for _, r := range p.Rules {
		if r.HasNegation() {
			return true
		}
	}
	return false
}

// HasComparison reports whether any rule uses an arithmetic comparison.
func (p *Program) HasComparison() bool {
	for _, r := range p.Rules {
		if r.HasComparison() {
			return true
		}
	}
	return false
}

// Validate checks that the program is well formed: consistent arities,
// safe rules, and no comparison predicates used as ordinary atoms.
func (p *Program) Validate() error {
	arity := map[string]int{}
	note := func(a Atom) error {
		if n, ok := arity[a.Pred]; ok && n != a.Arity() {
			return fmt.Errorf("ast: predicate %s used with arities %d and %d", a.Pred, n, a.Arity())
		}
		arity[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return err
		}
		for _, l := range r.Body {
			if l.IsComp() {
				continue
			}
			if err := note(l.Atom); err != nil {
				return err
			}
		}
		if err := r.CheckSafe(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the program, one rule per line.
func (p *Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// RenameApart returns a copy of the rule with every variable renamed by
// appending the given suffix, guaranteeing disjointness from any rule not
// using that suffix. Used before searching for containment mappings.
func (r *Rule) RenameApart(suffix string) *Rule {
	s := Subst{}
	for _, v := range r.Vars() {
		s[v] = V(v + suffix)
	}
	return r.Apply(s)
}
