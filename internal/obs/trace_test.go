package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func update(name string, seq uint64) []Event {
	return []Event{
		{Kind: KindUpdateBegin, Seq: seq, Update: name, Constraints: 1},
		{Kind: KindPhase, Seq: seq + 1, Update: name, Constraint: "ri", Phase: "global", Decided: true, Verdict: "holds", Relations: []string{"dept"}, Duration: 42 * time.Microsecond},
		{Kind: KindUpdateEnd, Seq: seq + 2, Update: name, Applied: true},
	}
}

func TestBufferTracerKeepsLastUpdates(t *testing.T) {
	b := NewBufferTracer(2)
	if !b.Enabled() {
		t.Fatal("buffer tracer disabled")
	}
	for i, u := range []string{"+a(1)", "+a(2)", "+a(3)"} {
		for _, e := range update(u, uint64(i*3)) {
			b.Emit(e)
		}
	}
	last := b.Last()
	if len(last) != 3 || last[0].Update != "+a(3)" {
		t.Errorf("Last() = %+v", last)
	}
	all := b.All()
	if len(all) != 6 || all[0].Update != "+a(2)" {
		t.Errorf("All() retained %d events starting %q, want 6 starting +a(2)", len(all), all[0].Update)
	}
}

func TestBufferTracerEmptyLast(t *testing.T) {
	if got := NewBufferTracer(0).Last(); got != nil {
		t.Errorf("Last() on empty tracer = %v", got)
	}
}

func TestJSONLTracerRoundTrips(t *testing.T) {
	var sb strings.Builder
	tr := NewJSONLTracer(&sb)
	for _, e := range update("+emp(ann,toy,50)", 0) {
		tr.Emit(e)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindPhase || e.Phase != "global" || !e.Decided || e.Relations[0] != "dept" {
		t.Errorf("round-tripped event = %+v", e)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLTracerStickyError(t *testing.T) {
	tr := NewJSONLTracer(failWriter{})
	tr.Emit(Event{Kind: KindUpdateBegin})
	tr.Emit(Event{Kind: KindUpdateEnd})
	if tr.Err() == nil {
		t.Error("write error not surfaced")
	}
}

func TestWriteTextRendering(t *testing.T) {
	var sb strings.Builder
	WriteText(&sb, []Event{
		{Kind: KindUpdateBegin, Update: "+emp(eve,ghost,70)", Constraints: 2},
		{Kind: KindPhase, Constraint: "ri", Phase: "unaffected", Cache: CacheHit, Duration: 2 * time.Microsecond},
		{Kind: KindPhase, Constraint: "ri", Phase: "global", Decided: true, Verdict: "VIOLATED", Relations: []string{"dept", "salRange"}},
		{Kind: KindUpdateEnd, Update: "+emp(eve,ghost,70)", Rejected: []string{"ri"}},
	})
	out := sb.String()
	for _, want := range []string{
		"== +emp(eve,ghost,70) (2 constraints)",
		"unaffected",
		"next",
		"cache=hit",
		"decided: VIOLATED",
		"remote=dept,salRange",
		"=> REJECTED [ri]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	WriteText(&sb, []Event{{Kind: KindUpdateEnd, Err: "boom"}})
	if !strings.Contains(sb.String(), "error: boom") {
		t.Errorf("error rendering: %q", sb.String())
	}
}

func TestMultiTracerAndDisabled(t *testing.T) {
	if Disabled.Enabled() {
		t.Error("Disabled reports enabled")
	}
	Disabled.Emit(Event{}) // must not panic
	if MultiTracer(Disabled).Enabled() {
		t.Error("multi of disabled reports enabled")
	}
	buf := NewBufferTracer(4)
	m := MultiTracer(Disabled, buf)
	if !m.Enabled() {
		t.Error("multi with a live member reports disabled")
	}
	m.Emit(Event{Kind: KindUpdateBegin, Update: "+a(1)"})
	if len(buf.Last()) != 1 {
		t.Error("multi did not forward to the live member")
	}
}

func TestTextTracerStreams(t *testing.T) {
	var sb strings.Builder
	tr := NewTextTracer(&sb)
	if !tr.Enabled() {
		t.Fatal("text tracer disabled")
	}
	tr.Emit(Event{Kind: KindUpdateBegin, Update: "+a(1)", Constraints: 1})
	if !strings.Contains(sb.String(), "== +a(1)") {
		t.Errorf("streamed rendering: %q", sb.String())
	}
}
