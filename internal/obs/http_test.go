package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "ups").Inc()
	mux := Mux(reg, func() map[string]any {
		return map[string]any{"relations": 3}
	})

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("/metrics body:\n%s", rec.Body.String())
	}

	rec := get("/healthz")
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("/healthz is not JSON: %v", err)
	}
	if health["status"] != "ok" || health["relations"] != float64(3) {
		t.Errorf("/healthz payload = %v", health)
	}

	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Errorf("/debug/pprof/ status = %d", rec.Code)
	}
	if rec := get("/debug/vars"); rec.Code != 200 {
		t.Errorf("/debug/vars status = %d", rec.Code)
	}
}

func TestMuxNilHealth(t *testing.T) {
	mux := Mux(NewRegistry(), nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Errorf("/healthz payload: %s", rec.Body.String())
	}
}
