package obs

import (
	"expvar"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("re-registering a counter did not return the same handle")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestCounterVecSeparatesLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("rpc_total", "requests", "site", "op")
	cv.With("a", "scan").Add(2)
	cv.With("a", "apply").Inc()
	cv.With("b", "scan").Inc()
	if got := cv.With("a", "scan").Value(); got != 2 {
		t.Errorf(`With("a","scan") = %d, want 2`, got)
	}
	if got := cv.With("b", "scan").Value(); got != 1 {
		t.Errorf(`With("b","scan") = %d, want 1`, got)
	}
}

// TestHistogramBucketMath pins the bucket placement rules: le bounds are
// inclusive, values above the last bound land in +Inf only, and the
// exposed counts are cumulative.
func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.5, 0.9, 2, 100} {
		h.Observe(v)
	}
	cum, sum, count := h.Snapshot()
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
	if want := 0.05 + 0.1 + 0.3 + 0.5 + 0.9 + 2 + 100; sum != want {
		t.Errorf("sum = %g, want %g", sum, want)
	}
	// cumulative: le=0.1 -> {0.05, 0.1}; le=0.5 -> +{0.3, 0.5};
	// le=1 -> +{0.9}; +Inf -> +{2, 100}.
	want := []uint64{2, 4, 5, 7}
	if len(cum) != len(want) {
		t.Fatalf("snapshot has %d buckets, want %d", len(cum), len(want))
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, cum[i], want[i])
		}
	}
}

func TestRegistryPanicsOnSchemaMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "first")
	defer func() {
		if recover() == nil {
			t.Error("re-registering m as a gauge did not panic")
		}
	}()
	r.Gauge("m", "second")
}

// TestPrometheusExpositionGolden pins the exact text format: sorted
// families, labeled series, histogram bucket/sum/count lines.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Add(3)
	cv := r.CounterVec("aa_total", "first family", "site")
	cv.With("s1").Add(2)
	cv.With(`s"2\`).Inc()
	r.Gauge("mid", "a gauge").Set(-4)
	h := r.HistogramVec("rpc_seconds", "rpc latency", []float64{0.25, 0.5}, "op")
	h.With("scan").Observe(0.25)
	h.With("scan").Observe(0.3)
	h.With("scan").Observe(9)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP aa_total first family
# TYPE aa_total counter
aa_total{site="s\"2\\"} 1
aa_total{site="s1"} 2
# HELP mid a gauge
# TYPE mid gauge
mid -4
# HELP rpc_seconds rpc latency
# TYPE rpc_seconds histogram
rpc_seconds_bucket{op="scan",le="0.25"} 1
rpc_seconds_bucket{op="scan",le="0.5"} 2
rpc_seconds_bucket{op="scan",le="+Inf"} 3
rpc_seconds_sum{op="scan"} 9.55
rpc_seconds_count{op="scan"} 3
# HELP zz_total last family
# TYPE zz_total counter
zz_total 3
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Add(12)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 12") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestSnapshotAndExpvarBridge(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("reads_total", "reads", "relation").With("emp").Add(9)
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap[`reads_total{relation="emp"}`] != int64(9) {
		t.Errorf("snapshot counter = %v", snap[`reads_total{relation="emp"}`])
	}
	hist, ok := snap["h_seconds"].(map[string]any)
	if !ok || hist["count"] != uint64(1) {
		t.Errorf("snapshot histogram = %v", snap["h_seconds"])
	}

	r.PublishExpvar("obs_test_bridge")
	r.PublishExpvar("obs_test_bridge") // second publish must not panic
	v := expvar.Get("obs_test_bridge")
	if v == nil {
		t.Fatal("expvar bridge not published")
	}
	if s := v.String(); !strings.Contains(s, `"reads_total{relation=\"emp\"}":9`) {
		t.Errorf("expvar payload missing counter: %s", s)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c_total", "c", "k")
	hv := r.HistogramVec("h_seconds", "h", nil, "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := string(rune('a' + g%3))
			for i := 0; i < 200; i++ {
				cv.With(key).Inc()
				hv.With(key).Observe(float64(i) / 1000)
				r.WritePrometheus(io.Discard)
			}
		}(g)
	}
	wg.Wait()
	total := cv.With("a").Value() + cv.With("b").Value() + cv.With("c").Value()
	if total != 8*200 {
		t.Errorf("lost increments: %d, want %d", total, 8*200)
	}
}
