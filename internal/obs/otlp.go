package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// OTLP-JSON file export: the OpenTelemetry OTLP/JSON trace payload shape
// (resourceSpans → scopeSpans → spans), hand-rolled over stdlib JSON so
// exported files load into any OTLP-speaking backend or viewer. One
// resourceSpans entry per service, since service.name is a resource
// attribute.

type otlpPayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []otlpAttr `json:"attributes,omitempty"`
	Status            otlpStatus `json:"status"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue string `json:"stringValue"`
}

type otlpStatus struct {
	Code    int    `json:"code"` // 0 unset, 1 ok, 2 error
	Message string `json:"message,omitempty"`
}

// WriteOTLP writes the traces as one OTLP/JSON ExportTraceServiceRequest
// payload, grouped into a resourceSpans entry per service.
func WriteOTLP(w io.Writer, traces []*Trace) error {
	byService := map[string][]otlpSpan{}
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			o := otlpSpan{
				TraceID:           sp.TraceID.String(),
				SpanID:            sp.SpanID.String(),
				Name:              sp.Name,
				Kind:              1, // internal
				StartTimeUnixNano: fmt.Sprint(sp.Start.UnixNano()),
				EndTimeUnixNano:   fmt.Sprint(sp.Start.Add(sp.Duration).UnixNano()),
			}
			if !sp.Parent.IsZero() {
				o.ParentSpanID = sp.Parent.String()
			}
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				o.Attributes = append(o.Attributes, otlpAttr{Key: k, Value: otlpValue{StringValue: sp.Attrs[k]}})
			}
			if sp.Err != "" {
				o.Status = otlpStatus{Code: 2, Message: sp.Err}
			}
			byService[sp.Service] = append(byService[sp.Service], o)
		}
	}
	services := make([]string, 0, len(byService))
	for svc := range byService {
		services = append(services, svc)
	}
	sort.Strings(services)
	payload := otlpPayload{}
	for _, svc := range services {
		payload.ResourceSpans = append(payload.ResourceSpans, otlpResourceSpans{
			Resource: otlpResource{Attributes: []otlpAttr{{
				Key: "service.name", Value: otlpValue{StringValue: svc},
			}}},
			ScopeSpans: []otlpScopeSpans{{
				Scope: otlpScope{Name: "ccheck/obs"},
				Spans: byService[svc],
			}},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(payload)
}

// WriteSpanTree renders one trace as an indented text tree — the
// ccshell :trace format:
//
//	trace 4bf92f3577b34da6a3ce929d0e0e4736  1.2ms  3 services, 7 spans
//	└─ serve.apply (ccserved)  1.2ms
//	   ├─ queue.wait  80µs
//	   └─ decide  1.1ms
//	      ├─ phase.residual (cache=hit)  10µs
//	      └─ rpc.eval → site-a (ccserved)  900µs
//	         └─ site.eval (ccsited)  700µs
//
// Spans whose parent is missing from the trace (dropped or foreign) are
// rendered as extra roots, so nothing is silently hidden.
func WriteSpanTree(w io.Writer, tr *Trace) {
	byID := make(map[SpanID]SpanData, len(tr.Spans))
	children := make(map[SpanID][]SpanData)
	services := map[string]bool{}
	for _, sp := range tr.Spans {
		byID[sp.SpanID] = sp
		services[sp.Service] = true
	}
	var roots []SpanData
	for _, sp := range tr.Spans {
		if _, ok := byID[sp.Parent]; ok && !sp.Parent.IsZero() {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	for id := range children {
		sort.Slice(children[id], func(i, j int) bool {
			return children[id][i].Start.Before(children[id][j].Start)
		})
	}
	fmt.Fprintf(w, "trace %s  %s  %d services, %d spans\n",
		tr.ID, tr.Root.Duration.Round(time.Microsecond), len(services), len(tr.Spans))
	var render func(sp SpanData, prefix string, last bool)
	render = func(sp SpanData, prefix string, last bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if last {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		fmt.Fprintf(w, "%s%s%s (%s)", prefix, branch, sp.Name, sp.Service)
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, k+"="+sp.Attrs[k])
			}
			fmt.Fprintf(w, " [%s]", strings.Join(parts, " "))
		}
		fmt.Fprintf(w, "  %s", sp.Duration.Round(time.Microsecond))
		if sp.Err != "" {
			fmt.Fprintf(w, "  ERROR: %s", sp.Err)
		}
		fmt.Fprintln(w)
		kids := children[sp.SpanID]
		for i, kid := range kids {
			render(kid, childPrefix, i == len(kids)-1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for i, root := range roots {
		render(root, "", i == len(roots)-1)
	}
}
