package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Event kinds. An update's trace is one update-begin, then one phase
// event per phase *attempt* per constraint (in constraint registration
// order, read-only attempts before global evaluations), then one
// update-end.
const (
	KindUpdateBegin = "update-begin"
	KindPhase       = "phase"
	KindUpdateEnd   = "update-end"
)

// Cache status values on phase events.
const (
	CacheHit  = "hit"
	CacheMiss = "miss"
	CacheOff  = "off"
)

// Event is one step of a decision trace. The emitting checker assigns
// Seq monotonically, so a merged or exported stream can always be
// re-ordered; Update strings use the store's "+rel(t)"/"-rel(t)" syntax.
type Event struct {
	Kind string `json:"kind"`
	Seq  uint64 `json:"seq"`
	// Update is the update being traced, e.g. "+emp(ann,toy,50)".
	Update string `json:"update"`
	// Constraint and Phase identify a phase attempt; Decided reports
	// whether this attempt settled the constraint, Verdict the outcome
	// when it did ("holds" or "VIOLATED").
	Constraint string `json:"constraint,omitempty"`
	Phase      string `json:"phase,omitempty"`
	Decided    bool   `json:"decided,omitempty"`
	Verdict    string `json:"verdict,omitempty"`
	// Cache is the decision-cache status of the attempt: "hit", "miss",
	// "off" (cache disabled), or empty for uncached phases.
	Cache string `json:"cache,omitempty"`
	// Duration is the attempt's wall clock.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Relations lists the remote relations a global evaluation consults.
	Relations []string `json:"relations,omitempty"`
	// Constraints is the managed-constraint count (update-begin only).
	Constraints int `json:"constraints,omitempty"`
	// Applied and Rejected summarize the update (update-end only).
	Applied  bool     `json:"applied,omitempty"`
	Rejected []string `json:"rejected,omitempty"`
	// IndexProbes is the process-wide index-probe delta observed across
	// the update (update-end only; 0 when index stats are unavailable).
	IndexProbes int64 `json:"index_probes,omitempty"`
	// Err records an evaluation error that aborted the update.
	Err string `json:"err,omitempty"`
}

// Tracer receives decision-trace events. Emitters gate every hook on
// Enabled() before building an event, so a disabled tracer costs one
// interface call per update, not per phase.
type Tracer interface {
	Enabled() bool
	Emit(Event)
}

// Disabled is a Tracer that is never enabled: plugging it in exercises
// the emitter's gating hooks without paying for event construction —
// the "tracing off" arm of the overhead benchmark.
var Disabled Tracer = disabledTracer{}

type disabledTracer struct{}

func (disabledTracer) Enabled() bool { return false }
func (disabledTracer) Emit(Event)    {}

// BufferTracer retains the traces of the most recent updates in memory,
// grouped by update; ccshell's :explain replays the last one.
type BufferTracer struct {
	mu sync.Mutex
	// updates holds one event slice per update-begin seen, oldest first.
	updates [][]Event
	cap     int
}

// NewBufferTracer retains the last keep updates (default 16 when
// keep <= 0).
func NewBufferTracer(keep int) *BufferTracer {
	if keep <= 0 {
		keep = 16
	}
	return &BufferTracer{cap: keep}
}

// Enabled always reports true.
func (b *BufferTracer) Enabled() bool { return true }

// Emit appends the event, starting a new group on update-begin.
func (b *BufferTracer) Emit(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e.Kind == KindUpdateBegin || len(b.updates) == 0 {
		b.updates = append(b.updates, nil)
		if len(b.updates) > b.cap {
			b.updates = b.updates[len(b.updates)-b.cap:]
		}
	}
	i := len(b.updates) - 1
	b.updates[i] = append(b.updates[i], e)
}

// Last returns the most recent update's events (nil when nothing was
// traced yet).
func (b *BufferTracer) Last() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.updates) == 0 {
		return nil
	}
	return append([]Event(nil), b.updates[len(b.updates)-1]...)
}

// All returns every retained event, oldest update first.
func (b *BufferTracer) All() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, u := range b.updates {
		out = append(out, u...)
	}
	return out
}

// JSONLTracer streams events as JSON Lines — one event object per line —
// the machine-readable export behind ccheck -trace-out.
type JSONLTracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLTracer writes events to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return &JSONLTracer{w: w} }

// Enabled always reports true.
func (t *JSONLTracer) Enabled() bool { return true }

// Emit writes one line; the first write error sticks and later emits are
// dropped (a broken export must not abort the checking run).
func (t *JSONLTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	body, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(body, '\n')); err != nil {
		t.err = err
	}
}

// Err returns the first write/marshal error, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// TextTracer renders events human-readably as they arrive — the
// streaming explain behind ccheck -trace.
type TextTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextTracer writes renderings to w.
func NewTextTracer(w io.Writer) *TextTracer { return &TextTracer{w: w} }

// Enabled always reports true.
func (t *TextTracer) Enabled() bool { return true }

// Emit renders one event.
func (t *TextTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	writeEvent(t.w, e)
}

// MultiTracer fans events out to several tracers; it is enabled when any
// member is. Disabled members are skipped per event.
func MultiTracer(ts ...Tracer) Tracer { return multiTracer(ts) }

type multiTracer []Tracer

func (m multiTracer) Enabled() bool {
	for _, t := range m {
		if t.Enabled() {
			return true
		}
	}
	return false
}

func (m multiTracer) Emit(e Event) {
	for _, t := range m {
		if t.Enabled() {
			t.Emit(e)
		}
	}
}

// WriteText renders a trace human-readably: the explain format shared by
// ccheck -trace and ccshell :explain.
//
//	== +emp(eve,ghost,70) (2 constraints)
//	   ri           unaffected   next                    cache=hit  2µs
//	   ri           global       decided: VIOLATED       remote=dept  210µs
//	   => REJECTED [ri]
func WriteText(w io.Writer, events []Event) {
	for _, e := range events {
		writeEvent(w, e)
	}
}

func writeEvent(w io.Writer, e Event) {
	switch e.Kind {
	case KindUpdateBegin:
		fmt.Fprintf(w, "== %s (%d constraints)\n", e.Update, e.Constraints)
	case KindPhase:
		outcome := "next"
		if e.Decided {
			outcome = "decided: " + e.Verdict
		}
		fmt.Fprintf(w, "   %-12s %-12s %-20s", e.Constraint, e.Phase, outcome)
		if e.Cache != "" {
			fmt.Fprintf(w, "  cache=%s", e.Cache)
		}
		if len(e.Relations) > 0 {
			fmt.Fprintf(w, "  remote=%s", strings.Join(e.Relations, ","))
		}
		if e.Duration > 0 {
			fmt.Fprintf(w, "  %s", e.Duration.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	case KindUpdateEnd:
		switch {
		case e.Err != "":
			fmt.Fprintf(w, "   => error: %s\n", e.Err)
		case e.Applied:
			fmt.Fprintf(w, "   => applied\n")
		default:
			fmt.Fprintf(w, "   => REJECTED [%s]\n", strings.Join(e.Rejected, ","))
		}
	}
}
