package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext(true)
	if sc.IsZero() || !sc.Sampled {
		t.Fatalf("NewSpanContext(true) = %+v", sc)
	}
	parsed, err := ParseTraceparent(sc.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != sc {
		t.Fatalf("round trip changed context: %+v vs %+v", parsed, sc)
	}
	un := NewSpanContext(false)
	parsed, err = ParseTraceparent(un.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Sampled {
		t.Fatal("unsampled flag lost in round trip")
	}
}

func TestParseTraceparentRejectsJunk(t *testing.T) {
	for _, bad := range []string{
		"",
		"00",
		"00-zz-11-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // missing flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad version
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestStartRootSampling(t *testing.T) {
	st := NewTraceStore(16)
	always := NewSpanTracer("svc", st, 1)
	never := NewSpanTracer("svc", st, 0)

	if sp := never.StartRoot("r", SpanContext{}); sp != nil {
		t.Fatal("rate 0 minted a root span")
	}
	sp := always.StartRoot("r", SpanContext{})
	if sp == nil {
		t.Fatal("rate 1 did not mint a root span")
	}
	if sp.Context().TraceID.IsZero() || !sp.Context().Sampled {
		t.Fatalf("fresh root context = %+v", sp.Context())
	}

	// An upstream context overrides head sampling in both directions.
	up := NewSpanContext(true)
	child := never.StartRoot("r", up)
	if child == nil {
		t.Fatal("sampled upstream context ignored by rate-0 tracer")
	}
	if child.Context().TraceID != up.TraceID {
		t.Fatal("trace id not inherited from upstream context")
	}
	child.End()
	tr := st.Trace(up.TraceID)
	if tr == nil {
		t.Fatal("continued trace not stored")
	}
	if tr.Root.Parent != up.SpanID {
		t.Fatal("root span does not parent to the upstream span")
	}
	if sp := always.StartRoot("r", NewSpanContext(false)); sp != nil {
		t.Fatal("unsampled upstream context sampled anyway")
	}
}

func TestNilSpanAndTracerAreSafe(t *testing.T) {
	var tr *SpanTracer
	var sp *Span
	var b *SpanBridge
	sp.SetAttr("k", "v")
	sp.SetError("boom")
	sp.End()
	if !sp.Context().IsZero() {
		t.Fatal("nil span has a context")
	}
	if got := tr.StartRoot("r", NewSpanContext(true)); got != nil {
		t.Fatal("nil tracer minted a span")
	}
	if got := tr.StartChild(nil, "c"); got != nil {
		t.Fatal("nil tracer minted a child")
	}
	tr.RecordChild(nil, "c", time.Now(), time.Millisecond, nil, "")
	tr.Adopt([]SpanData{{}})
	if tr.Service() != "" || tr.Store() != nil {
		t.Fatal("nil tracer leaks service/store")
	}
	b.SetActive(nil)
	if b.Enabled() || b.Active() != nil || b.Tracer() != nil {
		t.Fatal("nil bridge not disabled")
	}
	b.Emit(Event{Kind: KindPhase})
	var st *TraceStore
	st.AddComplete(SpanData{})
	if st.Len() != 0 || st.Trace(TraceID{}) != nil || st.Traces() != nil {
		t.Fatal("nil store not empty")
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	st := NewTraceStore(16)
	tracer := NewSpanTracer("svc", st, 1)
	root := tracer.StartRoot("req", SpanContext{})
	root.SetAttr("client", "test")
	child := tracer.StartChild(root, "decide")
	tracer.RecordChild(child, "phase.local", time.Now(), time.Millisecond, map[string]string{"constraint": "c1"}, "")
	child.End()
	if st.Len() != 0 {
		t.Fatal("trace completed before the root ended")
	}
	root.End()
	if st.Len() != 1 {
		t.Fatalf("stored traces = %d, want 1", st.Len())
	}
	tr := st.Trace(root.Context().TraceID)
	if tr == nil || len(tr.Spans) != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	// Every non-root span's parent must be present: no orphans.
	ids := map[SpanID]bool{}
	for _, sp := range tr.Spans {
		ids[sp.SpanID] = true
	}
	for _, sp := range tr.Spans {
		if !sp.Parent.IsZero() && !ids[sp.Parent] {
			t.Errorf("span %s has absent parent %s", sp.Name, sp.Parent)
		}
	}
	if tr.Violation {
		t.Fatal("clean trace flagged violating")
	}
}

func TestViolationAndErrorRetention(t *testing.T) {
	st := NewTraceStore(4) // tiny ring so eviction happens fast
	tracer := NewSpanTracer("svc", st, 1)

	viol := tracer.StartRoot("req", SpanContext{})
	viol.SetAttr("applied", "false")
	viol.SetAttr("violation", "c1")
	viol.End()
	violID := viol.Context().TraceID

	errRoot := tracer.StartRoot("req", SpanContext{})
	errRoot.SetError("site down")
	errRoot.End()
	errID := errRoot.Context().TraceID

	for i := 0; i < 50; i++ {
		sp := tracer.StartRoot("req", SpanContext{})
		sp.SetAttr("applied", "true")
		sp.End()
	}
	for _, id := range []TraceID{violID, errID} {
		tr := st.Trace(id)
		if tr == nil {
			t.Fatalf("interesting trace %s evicted by plain traffic", id)
		}
		if !tr.Violation {
			t.Fatalf("trace %s not flagged violating", id)
		}
	}
	if got := st.Len(); got > 4+2+defaultKeepCap {
		t.Fatalf("store grew unboundedly: %d traces", got)
	}
}

func TestTailRetentionKeepsSlowTraces(t *testing.T) {
	st := NewTraceStore(8)
	// Feed 30 varied fast completions to arm the p90 estimate, then one
	// slow trace, then enough fast traffic to rotate the recent ring.
	fast := func(i int) {
		sd := SpanData{TraceID: NewSpanContext(true).TraceID, SpanID: NewSpanID(), Name: "req",
			Duration: time.Duration(i%10+1) * time.Millisecond}
		st.record(sd, true)
	}
	for i := 0; i < 30; i++ {
		fast(i)
	}
	slowID := NewSpanContext(true).TraceID
	st.record(SpanData{TraceID: slowID, SpanID: NewSpanID(), Name: "req", Duration: time.Second}, true)
	for i := 0; i < 30; i++ {
		fast(i)
	}
	if st.Trace(slowID) == nil {
		t.Fatal("slow-tail trace rotated out of the store")
	}
}

func TestSelfTimesTelescope(t *testing.T) {
	tid := NewSpanContext(true).TraceID
	root := SpanData{TraceID: tid, SpanID: NewSpanID(), Name: "root", Duration: 10 * time.Millisecond}
	c1 := SpanData{TraceID: tid, SpanID: NewSpanID(), Parent: root.SpanID, Name: "c1", Duration: 4 * time.Millisecond}
	c2 := SpanData{TraceID: tid, SpanID: NewSpanID(), Parent: root.SpanID, Name: "c2", Duration: 3 * time.Millisecond}
	g := SpanData{TraceID: tid, SpanID: NewSpanID(), Parent: c1.SpanID, Name: "g", Duration: 5 * time.Millisecond} // longer than its parent
	tr := &Trace{ID: tid, Root: root, Spans: []SpanData{root, c1, c2, g}}

	selves := SelfTimes(tr)
	if got := selves[root.SpanID]; got != 3*time.Millisecond {
		t.Errorf("root self = %v, want 3ms", got)
	}
	if got := selves[c1.SpanID]; got != 0 {
		t.Errorf("c1 self = %v, want 0 (clamped: child outlasts parent)", got)
	}
	if got := selves[c2.SpanID]; got != 3*time.Millisecond {
		t.Errorf("c2 self = %v, want 3ms", got)
	}
	if got := selves[g.SpanID]; got != 5*time.Millisecond {
		t.Errorf("g self = %v, want 5ms", got)
	}
}

func TestSummarize(t *testing.T) {
	st := NewTraceStore(64)
	for i := 0; i < 10; i++ {
		tid := NewSpanContext(true).TraceID
		rootID := NewSpanID()
		st.record(SpanData{TraceID: tid, SpanID: NewSpanID(), Parent: rootID, Name: "phase.local", Service: "svc", Duration: 2 * time.Millisecond}, false)
		st.record(SpanData{TraceID: tid, SpanID: rootID, Name: "req", Service: "svc", Duration: 5 * time.Millisecond}, true)
	}
	sum := st.Summarize()
	if sum.Traces != 10 {
		t.Fatalf("summary traces = %d", sum.Traces)
	}
	if sum.P50 != 5*time.Millisecond || sum.P99 != 5*time.Millisecond {
		t.Fatalf("p50=%v p99=%v, want 5ms", sum.P50, sum.P99)
	}
	rows := map[string]AttribRow{}
	for _, r := range sum.Overall {
		rows[r.Name] = r
	}
	// Per trace: root self 3ms, phase self 2ms → telescopes to 5ms.
	if rows["req"].Self != 30*time.Millisecond || rows["phase.local"].Self != 20*time.Millisecond {
		t.Fatalf("attribution rows = %+v", sum.Overall)
	}
	var totalSelf time.Duration
	for _, r := range sum.Overall {
		totalSelf += r.Self
	}
	if totalSelf != 50*time.Millisecond {
		t.Fatalf("self times sum to %v, want the summed end-to-end 50ms", totalSelf)
	}
}

func TestBridgeEmitsChildSpans(t *testing.T) {
	st := NewTraceStore(16)
	tracer := NewSpanTracer("svc", st, 1)
	bridge := NewSpanBridge(tracer)
	if bridge.Enabled() {
		t.Fatal("bridge enabled with no active span")
	}
	root := tracer.StartRoot("req", SpanContext{})
	bridge.SetActive(root)
	if !bridge.Enabled() {
		t.Fatal("bridge disabled with an active span")
	}
	bridge.Emit(Event{Kind: KindUpdateBegin, Update: "+l(1,2)"})
	bridge.Emit(Event{Kind: KindPhase, Phase: "local", Constraint: "c1", Decided: true, Verdict: "safe", Duration: time.Millisecond, Cache: CacheMiss})
	bridge.Emit(Event{Kind: KindUpdateEnd, Applied: true, IndexProbes: 7})
	bridge.SetActive(nil)
	root.End()

	tr := st.Trace(root.Context().TraceID)
	if tr == nil || len(tr.Spans) != 2 {
		t.Fatalf("bridged trace = %+v", tr)
	}
	if tr.Root.Attrs["update"] != "+l(1,2)" || tr.Root.Attrs["applied"] != "true" || tr.Root.Attrs["index_probes"] != "7" {
		t.Fatalf("root attrs = %v", tr.Root.Attrs)
	}
	var phase SpanData
	for _, sp := range tr.Spans {
		if sp.Name == "phase.local" {
			phase = sp
		}
	}
	if phase.Attrs["constraint"] != "c1" || phase.Attrs["verdict"] != "safe" || phase.Attrs["cache"] != CacheMiss {
		t.Fatalf("phase attrs = %v", phase.Attrs)
	}

	bridge.Emit(Event{Kind: KindPhase, Phase: "late"}) // after clear: dropped, not panicking
	if st.Len() != 1 {
		t.Fatal("event emitted with no active span was recorded")
	}
}

func TestTraceStoreConcurrentRecord(t *testing.T) {
	st := NewTraceStore(32)
	tracer := NewSpanTracer("svc", st, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tracer.StartRoot("req", SpanContext{})
				tracer.RecordChild(root, "phase", time.Now(), time.Microsecond, nil, "")
				root.End()
				st.Traces()
				st.Summarize()
			}
		}()
	}
	wg.Wait()
	if done, _ := st.Completed(); done != 8*200 {
		t.Fatalf("completed = %d, want 1600", done)
	}
}

func TestOTLPExportShape(t *testing.T) {
	st := NewTraceStore(16)
	tracer := NewSpanTracer("coord", st, 1)
	root := tracer.StartRoot("req", SpanContext{})
	tracer.Adopt([]SpanData{{
		TraceID: root.Context().TraceID, SpanID: NewSpanID(), Parent: root.Context().SpanID,
		Name: "site.scan", Service: "site-a", Start: time.Now(), Duration: time.Millisecond,
		Err: "boom",
	}})
	root.End()

	var buf bytes.Buffer
	if err := WriteOTLP(&buf, st.Traces()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID string `json:"traceId"`
					SpanID  string `json:"spanId"`
					Name    string `json:"name"`
					Status  *struct {
						Code int `json:"code"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("OTLP output is not JSON: %v\n%s", err, buf.String())
	}
	if len(doc.ResourceSpans) != 2 {
		t.Fatalf("resourceSpans = %d, want one per service", len(doc.ResourceSpans))
	}
	services := map[string]bool{}
	var sawError bool
	for _, rs := range doc.ResourceSpans {
		for _, attr := range rs.Resource.Attributes {
			if attr.Key == "service.name" {
				services[attr.Value.StringValue] = true
			}
		}
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
					t.Errorf("span id lengths: trace %q span %q", sp.TraceID, sp.SpanID)
				}
				if sp.Status != nil && sp.Status.Code == 2 {
					sawError = true
				}
			}
		}
	}
	if !services["coord"] || !services["site-a"] {
		t.Fatalf("services exported = %v", services)
	}
	if !sawError {
		t.Fatal("failed span lost its error status")
	}
}

func TestWriteSpanTree(t *testing.T) {
	st := NewTraceStore(16)
	tracer := NewSpanTracer("svc", st, 1)
	root := tracer.StartRoot("req", SpanContext{})
	child := tracer.StartChild(root, "decide")
	tracer.RecordChild(child, "phase.local", time.Now(), time.Millisecond, map[string]string{"constraint": "c1"}, "")
	child.End()
	root.End()

	var buf bytes.Buffer
	WriteSpanTree(&buf, st.Trace(root.Context().TraceID))
	out := buf.String()
	for _, want := range []string{"trace " + root.Context().TraceID.String(), "req", "decide", "phase.local", "constraint=c1", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("span tree missing %q:\n%s", want, out)
		}
	}
}

func TestTraceEndpoints(t *testing.T) {
	st := NewTraceStore(16)
	tracer := NewSpanTracer("svc", st, 1)
	root := tracer.StartRoot("req", SpanContext{})
	tracer.RecordChild(root, "phase.local", time.Now(), time.Millisecond, nil, "")
	root.SetAttr("applied", "false")
	root.SetAttr("violation", "c1")
	root.End()

	ready := true
	mux := NewServeMux(nil, "", nil, func() bool { return ready }, st)
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/readyz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ready":true`) {
		t.Errorf("/readyz ready: %d %s", rec.Code, rec.Body.String())
	}
	ready = false
	if rec := get("/readyz"); rec.Code != 503 || !strings.Contains(rec.Body.String(), `"ready":false`) {
		t.Errorf("/readyz not ready: %d %s", rec.Code, rec.Body.String())
	}

	rec := get("/debug/traces")
	var list struct {
		Traces []traceSummaryJSON `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Root != "req" || !list.Traces[0].Violation || list.Traces[0].Spans != 2 {
		t.Fatalf("/debug/traces = %+v", list.Traces)
	}

	rec = get("/debug/traces/" + list.Traces[0].ID)
	if rec.Code != 200 {
		t.Fatalf("/debug/traces/{id} status = %d", rec.Code)
	}
	var tree struct {
		ID    string     `json:"id"`
		Spans []spanJSON `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatal(err)
	}
	if tree.ID != list.Traces[0].ID || len(tree.Spans) != 2 {
		t.Fatalf("span tree = %+v", tree)
	}

	if rec := get("/debug/traces/zznotahexid"); rec.Code != 400 {
		t.Errorf("bad id status = %d", rec.Code)
	}
	if rec := get("/debug/traces/00000000000000000000000000000001"); rec.Code != 404 {
		t.Errorf("absent id status = %d", rec.Code)
	}

	rec = get("/debug/traces/summary")
	var sum Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Traces != 1 || len(sum.Overall) == 0 {
		t.Fatalf("summary = %+v", sum)
	}
}
