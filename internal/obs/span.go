package obs

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// This file is the distributed-tracing half of the observability layer:
// a span model with W3C trace-context propagation, so one client request
// is one trace whose spans cross serve → coordinator → site processes.
// The design mirrors the Tracer discipline: everything is nil-safe, and
// with no SpanTracer attached (or a request unsampled) the hot paths pay
// one pointer check — no clock reads, no allocation.

// TraceID identifies one end-to-end request across processes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as lowercase hex (32 chars).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as lowercase hex (16 chars).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses a 32-char hex trace id.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace id %q is not 32 hex chars", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("obs: trace id is all zeros")
	}
	return t, nil
}

// ParseSpanID parses a 16-char hex span id.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("obs: span id %q is not 16 hex chars", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("obs: span id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("obs: span id is all zeros")
	}
	return id, nil
}

// SpanContext is the propagated part of a span: what crosses process
// boundaries in the traceparent header (HTTP) or the netdist Trace
// field (wire protocol).
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled carries the head-sampling decision: downstream processes
	// record spans for sampled traces and skip the rest, so one decision
	// at the edge governs the whole request.
	Sampled bool
}

// IsZero reports whether the context carries no trace.
func (sc SpanContext) IsZero() bool { return sc.TraceID.IsZero() }

// Traceparent renders the context in the W3C trace-context format:
// "00-<trace-id>-<span-id>-<flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header. Unknown versions are
// accepted as long as the field layout matches (per the spec's
// forward-compatibility rule); a malformed value is an error, and the
// caller should proceed untraced.
func ParseTraceparent(s string) (SpanContext, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: want version-traceid-spanid-flags", s)
	}
	if len(parts[0]) != 2 || parts[0] == "ff" {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad version", s)
	}
	tid, err := ParseTraceID(parts[1])
	if err != nil {
		return SpanContext{}, err
	}
	sid, err := ParseSpanID(parts[2])
	if err != nil {
		return SpanContext{}, err
	}
	if len(parts[3]) != 2 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad flags", s)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(parts[3])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad flags", s)
	}
	return SpanContext{TraceID: tid, SpanID: sid, Sampled: flags[0]&1 == 1}, nil
}

// idSource mints ids. One process-wide locked PRNG: span creation is not
// on the unsampled hot path, and crypto-strength ids buy nothing here.
var idSource = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}

func newIDs() (TraceID, SpanID) {
	idSource.mu.Lock()
	defer idSource.mu.Unlock()
	var t TraceID
	var s SpanID
	for t.IsZero() {
		idSource.rng.Read(t[:])
	}
	for s.IsZero() {
		idSource.rng.Read(s[:])
	}
	return t, s
}

// NewSpanContext mints a fresh root context — what a client (SDK,
// ccload) sends when it originates a trace rather than continuing one.
func NewSpanContext(sampled bool) SpanContext {
	t, s := newIDs()
	return SpanContext{TraceID: t, SpanID: s, Sampled: sampled}
}

// NewSpanID mints a fresh span id — for spans assembled by hand (a site
// answering a traced RPC without a tracer of its own).
func NewSpanID() SpanID {
	_, s := newIDs()
	return s
}

// SpanData is one completed (or in-flight) span, the immutable record
// the TraceStore retains and the OTLP exporter writes. Parent is zero
// for the root of a process-local tree; a span whose parent id belongs
// to another process still reassembles by TraceID.
type SpanData struct {
	TraceID  TraceID
	SpanID   SpanID
	Parent   SpanID
	Name     string
	Service  string
	Start    time.Time
	Duration time.Duration
	Attrs    map[string]string
	Err      string
}

// Span is a live span handle. All methods are nil-safe: code paths hold
// a *Span that is nil whenever the request is untraced, so the "off"
// cost is one pointer check per call site.
type Span struct {
	tracer *SpanTracer

	mu    sync.Mutex
	data  SpanData
	root  bool // ending a root span completes its trace in the store
	ended bool
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID, Sampled: true}
}

// SetAttr sets one attribute. No-op after End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = map[string]string{}
	}
	s.data.Attrs[key] = value
}

// SetError marks the span failed with the given message.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Err = msg
	}
}

// End stamps the duration and hands the span to the tracer's store; a
// root span additionally completes its trace. Safe to call once; later
// calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = time.Since(s.data.Start)
	data, root := s.data, s.root
	s.mu.Unlock()
	if s.tracer != nil && s.tracer.store != nil {
		s.tracer.store.record(data, root)
	}
}

// SpanTracer mints spans for one service (process). A nil tracer is the
// "spans off" arm: every method no-ops and returns nil spans.
type SpanTracer struct {
	service string
	store   *TraceStore

	mu   sync.Mutex
	rng  *rand.Rand
	rate float64
}

// NewSpanTracer builds a tracer for the named service. rate is the
// head-sampling probability for traces originating here (clamped to
// [0,1]); traces continued from an upstream context follow the upstream
// sampling decision instead. store receives completed spans (required).
func NewSpanTracer(service string, store *TraceStore, rate float64) *SpanTracer {
	return &SpanTracer{
		service: service,
		store:   store,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano() ^ 0x5eed)),
		rate:    min(max(rate, 0), 1),
	}
}

// Service returns the tracer's service name ("" for nil).
func (t *SpanTracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Store returns the tracer's trace store (nil for nil tracers).
func (t *SpanTracer) Store() *TraceStore {
	if t == nil {
		return nil
	}
	return t.store
}

func (t *SpanTracer) sample() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rate >= 1 {
		return true
	}
	if t.rate <= 0 {
		return false
	}
	return t.rng.Float64() < t.rate
}

// StartRoot starts the local root span of a trace: the server-side span
// of one request. With a non-zero parent context the trace id and the
// sampling decision are inherited (the span records only when the
// upstream sampled); with a zero parent a fresh trace is minted and head
// sampling decides. Returns nil when the trace is unsampled — every
// downstream span creation then short-circuits on the nil check.
func (t *SpanTracer) StartRoot(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if parent.IsZero() {
		if !t.sample() {
			return nil
		}
		tid, sid := newIDs()
		return t.start(name, tid, sid, SpanID{}, true)
	}
	if !parent.Sampled {
		return nil
	}
	_, sid := newIDs()
	return t.start(name, parent.TraceID, sid, parent.SpanID, true)
}

// StartChild starts a child span under parent (nil parent → nil child).
func (t *SpanTracer) StartChild(parent *Span, name string) *Span {
	if t == nil || parent == nil {
		return nil
	}
	_, sid := newIDs()
	return t.start(name, parent.data.TraceID, sid, parent.data.SpanID, false)
}

func (t *SpanTracer) start(name string, tid TraceID, sid, parent SpanID, root bool) *Span {
	sp := &Span{
		tracer: t,
		root:   root,
		data: SpanData{
			TraceID: tid,
			SpanID:  sid,
			Parent:  parent,
			Name:    name,
			Service: t.service,
			Start:   time.Now(),
		},
	}
	if t.store != nil {
		t.store.open(tid)
	}
	return sp
}

// RecordChild records an already-measured child span under parent: the
// caller knows the start and duration (a queue wait, a bridged phase
// attempt) and no live handle is needed.
func (t *SpanTracer) RecordChild(parent *Span, name string, start time.Time, d time.Duration, attrs map[string]string, errMsg string) {
	if t == nil || parent == nil || t.store == nil {
		return
	}
	_, sid := newIDs()
	t.store.record(SpanData{
		TraceID:  parent.data.TraceID,
		SpanID:   sid,
		Parent:   parent.data.SpanID,
		Name:     name,
		Service:  t.service,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
		Err:      errMsg,
	}, false)
}

// Adopt inserts spans recorded by another process (a site's wire-echoed
// spans) into this tracer's store, so the coordinator-side trace tree is
// complete without a separate collection pipeline.
func (t *SpanTracer) Adopt(spans []SpanData) {
	if t == nil || t.store == nil {
		return
	}
	for _, sd := range spans {
		t.store.record(sd, false)
	}
}

// SpanBridge funnels the checker's decision-trace events into the active
// request span: each phase attempt becomes a completed child span, and
// the update-end summary lands as attributes. It implements Tracer, so
// it plugs straight into core.Options.Tracer; with no active span it is
// disabled and the checker stays on the untraced path.
//
// The bridge is single-flight by design: the decision worker sets the
// active span before driving the checker and clears it after, so Emit
// never races with SetActive for the same request.
type SpanBridge struct {
	tracer *SpanTracer

	mu     sync.Mutex
	active *Span
}

// NewSpanBridge builds a bridge minting child spans through t.
func NewSpanBridge(t *SpanTracer) *SpanBridge {
	if t == nil {
		return nil
	}
	return &SpanBridge{tracer: t}
}

// Tracer returns the bridge's span tracer (nil-safe).
func (b *SpanBridge) Tracer() *SpanTracer {
	if b == nil {
		return nil
	}
	return b.tracer
}

// SetActive installs the span under which bridged events nest; nil
// clears it (and disables the bridge).
func (b *SpanBridge) SetActive(s *Span) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.active = s
	b.mu.Unlock()
}

// Active returns the current parent span (nil when idle).
func (b *SpanBridge) Active() *Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Enabled reports whether a request span is active (Tracer interface).
func (b *SpanBridge) Enabled() bool { return b != nil && b.Active() != nil }

// Emit converts one decision-trace event into span form (Tracer
// interface): phase attempts become completed children named
// "phase.<phase>" carrying constraint/cache/verdict attributes, and the
// update bracket events annotate the active span itself.
func (b *SpanBridge) Emit(e Event) {
	sp := b.Active()
	if sp == nil {
		return
	}
	switch e.Kind {
	case KindUpdateBegin:
		sp.SetAttr("update", e.Update)
	case KindPhase:
		attrs := map[string]string{"constraint": e.Constraint}
		if e.Cache != "" {
			attrs["cache"] = e.Cache
		}
		if e.Decided {
			attrs["verdict"] = e.Verdict
		}
		if len(e.Relations) > 0 {
			attrs["remote"] = strings.Join(e.Relations, ",")
		}
		b.tracer.RecordChild(sp, "phase."+e.Phase, time.Now().Add(-e.Duration), e.Duration, attrs, "")
	case KindUpdateEnd:
		switch {
		case e.Err != "":
			sp.SetError(e.Err)
		case e.Applied:
			sp.SetAttr("applied", "true")
		default:
			sp.SetAttr("applied", "false")
			sp.SetAttr("violation", strings.Join(e.Rejected, ","))
		}
		if e.IndexProbes > 0 {
			sp.SetAttr("index_probes", fmt.Sprint(e.IndexProbes))
		}
	}
}
