package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceStore assembles spans into traces and retains a bounded window of
// them in memory. Retention is two-tier:
//
//   - recent: a FIFO ring of the latest completed traces (whatever head
//     sampling admitted), sized by cap.
//   - retained: tail-based keeps — traces whose root latency lands in
//     the slow tail (≥ the store's running p90 estimate) or that carry a
//     violation or error anywhere in the tree. These survive after the
//     recent ring has rotated past them, so the interesting traces are
//     still there when someone looks.
//
// Spans arrive out of order (children end before the root; site spans
// are adopted whenever the RPC response lands), so spans accumulate in
// an open table keyed by trace id until the root span ends.
type TraceStore struct {
	mu sync.Mutex

	openTraces map[TraceID]*openTrace
	openCap    int

	recent   []*Trace // FIFO ring, newest last
	cap      int
	retained []*Trace
	keepCap  int

	// reservoir of recent root durations backing the slow-tail estimate.
	durs    []time.Duration
	dursPos int

	completed uint64
	dropped   uint64 // open traces evicted before their root ended
}

type openTrace struct {
	spans   []SpanData
	started time.Time
}

// Trace is one completed trace: the root span plus everything that
// joined under its trace id before the root ended.
type Trace struct {
	ID        TraceID
	Root      SpanData
	Spans     []SpanData // includes the root; insertion order
	Violation bool       // any span carries a violation attr or error
}

// Duration is the end-to-end latency: the root span's duration.
func (t *Trace) Duration() time.Duration { return t.Root.Duration }

const (
	defaultOpenCap = 256
	defaultKeepCap = 128
	durWindow      = 512
)

// NewTraceStore builds a store retaining up to cap recent traces (and up
// to cap/4, min 16, tail-kept ones). cap <= 0 defaults to 256.
func NewTraceStore(cap int) *TraceStore {
	if cap <= 0 {
		cap = 256
	}
	keep := cap / 4
	if keep < 16 {
		keep = 16
	}
	if keep > defaultKeepCap {
		keep = defaultKeepCap
	}
	return &TraceStore{
		openTraces: make(map[TraceID]*openTrace),
		openCap:    defaultOpenCap,
		cap:        cap,
		keepCap:    keep,
		durs:       make([]time.Duration, 0, durWindow),
	}
}

// open registers a trace id as in-flight so later spans have a bucket.
func (s *TraceStore) open(id TraceID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.openLocked(id)
}

func (s *TraceStore) openLocked(id TraceID) *openTrace {
	if ot, ok := s.openTraces[id]; ok {
		return ot
	}
	if len(s.openTraces) >= s.openCap {
		// Evict the stalest open trace: a root that never ended (client
		// hang, crashed peer). Losing it beats unbounded growth.
		var oldestID TraceID
		var oldest time.Time
		first := true
		for tid, ot := range s.openTraces {
			if first || ot.started.Before(oldest) {
				oldestID, oldest, first = tid, ot.started, false
			}
		}
		delete(s.openTraces, oldestID)
		s.dropped++
	}
	ot := &openTrace{started: time.Now()}
	s.openTraces[id] = ot
	return ot
}

// record adds one completed span; root=true finalizes the trace.
func (s *TraceStore) record(sd SpanData, root bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ot := s.openLocked(sd.TraceID)
	ot.spans = append(ot.spans, sd)
	if !root {
		return
	}
	delete(s.openTraces, sd.TraceID)
	tr := &Trace{ID: sd.TraceID, Root: sd, Spans: ot.spans}
	for _, sp := range tr.Spans {
		if sp.Err != "" || sp.Attrs["applied"] == "false" || sp.Attrs["violation"] != "" {
			tr.Violation = true
			break
		}
	}
	s.completed++

	slow := s.isSlowLocked(sd.Duration)
	if len(s.durs) < durWindow {
		s.durs = append(s.durs, sd.Duration)
	} else {
		s.durs[s.dursPos] = sd.Duration
		s.dursPos = (s.dursPos + 1) % durWindow
	}

	s.recent = append(s.recent, tr)
	if len(s.recent) > s.cap {
		evicted := s.recent[0]
		s.recent = append(s.recent[:0], s.recent[1:]...)
		// Tail retention: the evicted trace survives in the retained
		// ring if it was slow or violating.
		if evicted.Violation || s.isSlowLocked(evicted.Root.Duration) {
			s.retainLocked(evicted)
		}
	}
	// Violating and slow traces are also pinned immediately, so they are
	// findable even if the recent ring rotates fast under load.
	if tr.Violation || slow {
		s.retainLocked(tr)
	}
}

func (s *TraceStore) retainLocked(tr *Trace) {
	for _, have := range s.retained {
		if have.ID == tr.ID {
			return
		}
	}
	s.retained = append(s.retained, tr)
	if len(s.retained) > s.keepCap {
		s.retained = append(s.retained[:0], s.retained[1:]...)
	}
}

// isSlowLocked reports whether d lands at or above the running p90 of
// recently completed root durations. With fewer than 20 observations
// nothing counts as slow — the estimate is noise that early.
func (s *TraceStore) isSlowLocked(d time.Duration) bool {
	if len(s.durs) < 20 {
		return false
	}
	sorted := make([]time.Duration, len(s.durs))
	copy(sorted, s.durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return d >= quantileDur(sorted, 0.90)
}

// quantileDur reads the q-quantile from an ascending slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// AddComplete inserts one span as a complete single-span trace — how a
// site retains its side of a remote request locally, where the real root
// lives in another process's store.
func (s *TraceStore) AddComplete(sd SpanData) {
	if s == nil {
		return
	}
	s.record(sd, true)
}

// Traces lists stored traces, newest first: the recent window plus any
// tail-retained traces that have rotated out of it.
func (s *TraceStore) Traces() []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[TraceID]bool, len(s.recent)+len(s.retained))
	out := make([]*Trace, 0, len(s.recent)+len(s.retained))
	for i := len(s.recent) - 1; i >= 0; i-- {
		out = append(out, s.recent[i])
		seen[s.recent[i].ID] = true
	}
	for i := len(s.retained) - 1; i >= 0; i-- {
		if !seen[s.retained[i].ID] {
			out = append(out, s.retained[i])
		}
	}
	return out
}

// Trace returns the stored trace with the given id, or nil.
func (s *TraceStore) Trace(id TraceID) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.recent) - 1; i >= 0; i-- {
		if s.recent[i].ID == id {
			return s.recent[i]
		}
	}
	for i := len(s.retained) - 1; i >= 0; i-- {
		if s.retained[i].ID == id {
			return s.retained[i]
		}
	}
	return nil
}

// Len returns how many distinct traces are currently stored.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Traces())
}

// Completed returns how many traces have finished since startup, and how
// many open traces were evicted un-finished.
func (s *TraceStore) Completed() (completed, dropped uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed, s.dropped
}

// AttribRow is one line of the latency-attribution rollup: the total
// self-time spent in spans with this name+service, across a set of
// traces. Self-time is a span's duration minus the sum of its children's
// durations (clamped at zero), so the rows of one trace telescope to the
// root duration and the decomposition is immune to cross-process clock
// skew — only durations are compared, never absolute timestamps.
type AttribRow struct {
	Name    string        `json:"name"`
	Service string        `json:"service"`
	Count   int           `json:"count"`
	Self    time.Duration `json:"self_ns"`
	Pct     float64       `json:"pct"` // share of summed end-to-end time
}

// Summary is the /debug/traces/summary payload: end-to-end percentiles
// and the per-phase/per-site self-time decomposition, overall and for
// the slow tail.
type Summary struct {
	Traces  int           `json:"traces"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	Overall []AttribRow   `json:"overall"` // across all stored traces
	Slow    []AttribRow   `json:"slow"`    // across traces with root ≥ p99
}

// Summarize computes the attribution rollup over the stored traces.
func (s *TraceStore) Summarize() Summary {
	traces := s.Traces()
	sum := Summary{Traces: len(traces)}
	if len(traces) == 0 {
		return sum
	}
	durs := make([]time.Duration, len(traces))
	for i, tr := range traces {
		durs[i] = tr.Root.Duration
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	sum.P50 = quantileDur(durs, 0.50)
	sum.P99 = quantileDur(durs, 0.99)

	var slow []*Trace
	for _, tr := range traces {
		if tr.Root.Duration >= sum.P99 {
			slow = append(slow, tr)
		}
	}
	sum.Overall = attribRows(traces)
	sum.Slow = attribRows(slow)
	return sum
}

// SelfTimes returns per-span self-time for one trace, keyed by span id.
func SelfTimes(tr *Trace) map[SpanID]time.Duration {
	childSum := make(map[SpanID]time.Duration)
	for _, sp := range tr.Spans {
		if !sp.Parent.IsZero() {
			childSum[sp.Parent] += sp.Duration
		}
	}
	out := make(map[SpanID]time.Duration, len(tr.Spans))
	for _, sp := range tr.Spans {
		self := sp.Duration - childSum[sp.SpanID]
		if self < 0 {
			self = 0
		}
		out[sp.SpanID] = self
	}
	return out
}

func attribRows(traces []*Trace) []AttribRow {
	type key struct{ name, service string }
	acc := make(map[key]*AttribRow)
	var total time.Duration
	for _, tr := range traces {
		total += tr.Root.Duration
		selves := SelfTimes(tr)
		for _, sp := range tr.Spans {
			k := key{sp.Name, sp.Service}
			row := acc[k]
			if row == nil {
				row = &AttribRow{Name: sp.Name, Service: sp.Service}
				acc[k] = row
			}
			row.Count++
			row.Self += selves[sp.SpanID]
		}
	}
	rows := make([]AttribRow, 0, len(acc))
	for _, row := range acc {
		if total > 0 {
			row.Pct = 100 * float64(row.Self) / float64(total)
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Self != rows[j].Self {
			return rows[i].Self > rows[j].Self
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}
