package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Mux builds the live-endpoint mux a daemon serves on its -http address:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      JSON health payload (health() merged over {"status":"ok"})
//	/debug/vars   expvar (publish reg with PublishExpvar to include it)
//	/debug/pprof  the standard runtime profiles
//
// health may be nil; the endpoint then reports only {"status":"ok"}.
func Mux(reg *Registry, health func() map[string]any) *http.ServeMux {
	return NewServeMux(reg, "", health)
}

// NewServeMux is the shared live-endpoint constructor for daemons
// (ccsited -http, ccserved): it publishes reg under the given expvar
// name (empty skips the bridge; republishing an existing name is a
// no-op) and builds the Mux endpoints. Daemons register their own API
// handlers onto the returned mux so one listener serves both.
func NewServeMux(reg *Registry, expvarName string, health func() map[string]any) *http.ServeMux {
	if expvarName != "" {
		reg.PublishExpvar(expvarName)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		payload := map[string]any{"status": "ok"}
		if health != nil {
			for k, v := range health() {
				payload[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(payload)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
