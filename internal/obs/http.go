package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Mux builds the live-endpoint mux a daemon serves on its -http address:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      JSON health payload (health() merged over {"status":"ok"})
//	/readyz       readiness: 200 while ready() is true (or nil), 503 after
//	/debug/vars   expvar (publish reg with PublishExpvar to include it)
//	/debug/pprof  the standard runtime profiles
//
// health may be nil; the endpoint then reports only {"status":"ok"}.
func Mux(reg *Registry, health func() map[string]any) *http.ServeMux {
	return NewServeMux(reg, "", health, nil, nil)
}

// NewServeMux is the shared live-endpoint constructor for daemons
// (ccsited -http, ccserved): it publishes reg under the given expvar
// name (empty skips the bridge; republishing an existing name is a
// no-op) and builds the Mux endpoints. Daemons register their own API
// handlers onto the returned mux so one listener serves both.
//
// ready distinguishes liveness from load-balancer eligibility: /healthz
// answers 200 for as long as the process can serve it, while /readyz
// flips to 503 the moment ready() reports false — ccserved wires it to
// its drain flag so traffic stops being routed before shutdown, ccsited
// to site-server liveness. A nil ready means always ready.
//
// traces, when non-nil, additionally exposes the trace store:
//
//	/debug/traces          list of stored traces (newest first)
//	/debug/traces/summary  latency attribution rollup
//	/debug/traces/{id}     one trace's span tree as JSON
func NewServeMux(reg *Registry, expvarName string, health func() map[string]any, ready func() bool, traces *TraceStore) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		if expvarName != "" {
			reg.PublishExpvar(expvarName)
		}
		mux.Handle("/metrics", reg.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		payload := map[string]any{"status": "ok"}
		if health != nil {
			for k, v := range health() {
				payload[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"ready": false})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"ready": true})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if traces != nil {
		registerTraceEndpoints(mux, traces)
	}
	return mux
}

// traceSummaryJSON is one row of the /debug/traces listing.
type traceSummaryJSON struct {
	ID         string `json:"id"`
	Root       string `json:"root"`
	Service    string `json:"service"`
	Spans      int    `json:"spans"`
	DurationUS int64  `json:"duration_us"`
	Violation  bool   `json:"violation,omitempty"`
	Err        string `json:"err,omitempty"`
}

// spanJSON is one span of a /debug/traces/{id} tree.
type spanJSON struct {
	SpanID     string            `json:"span_id"`
	Parent     string            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	Service    string            `json:"service"`
	StartUnix  int64             `json:"start_unix_nano"`
	DurationUS int64             `json:"duration_us"`
	SelfUS     int64             `json:"self_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Err        string            `json:"err,omitempty"`
}

func registerTraceEndpoints(mux *http.ServeMux, store *TraceStore) {
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		// The Go 1.22 pattern "/debug/traces" only matches the exact
		// path, so /summary and /{id} route below.
		all := store.Traces()
		out := make([]traceSummaryJSON, 0, len(all))
		for _, tr := range all {
			out = append(out, traceSummaryJSON{
				ID:         tr.ID.String(),
				Root:       tr.Root.Name,
				Service:    tr.Root.Service,
				Spans:      len(tr.Spans),
				DurationUS: tr.Root.Duration.Microseconds(),
				Violation:  tr.Violation,
				Err:        tr.Root.Err,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"traces": out})
	})
	mux.HandleFunc("GET /debug/traces/summary", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(store.Summarize())
	})
	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimSpace(r.PathValue("id"))
		id, err := ParseTraceID(raw)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		tr := store.Trace(id)
		if tr == nil {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		selves := SelfTimes(tr)
		spans := make([]spanJSON, 0, len(tr.Spans))
		for _, sp := range tr.Spans {
			sj := spanJSON{
				SpanID:     sp.SpanID.String(),
				Name:       sp.Name,
				Service:    sp.Service,
				StartUnix:  sp.Start.UnixNano(),
				DurationUS: sp.Duration.Microseconds(),
				SelfUS:     selves[sp.SpanID].Microseconds(),
				Attrs:      sp.Attrs,
				Err:        sp.Err,
			}
			if !sp.Parent.IsZero() {
				sj.Parent = sp.Parent.String()
			}
			spans = append(spans, sj)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"id":          tr.ID.String(),
			"duration_us": tr.Root.Duration.Microseconds(),
			"violation":   tr.Violation,
			"spans":       spans,
		})
	})
}
