// Package obs is the observability layer of the runtime: a
// zero-dependency (stdlib-only) metrics registry with Prometheus
// text-format exposition and an expvar bridge, a structured decision
// tracer for the staged checking pipeline, and the live HTTP endpoints
// (/metrics, /healthz, pprof) the site daemon serves.
//
// The registry deliberately implements the small subset of the
// Prometheus data model the runtime needs — counters, gauges, and
// fixed-bucket histograms, each optionally labeled — so no external
// client library is required. Metric handles are cheap to use on hot
// paths: counters and gauges are single atomics, histograms take one
// short mutex-protected critical section per observation, and every
// layer that accepts a *Registry treats nil as "instrumentation off"
// and skips the hooks entirely.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names, as exposed in the Prometheus TYPE comment.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefLatencyBuckets is the default latency histogram layout, in seconds:
// 100µs to 2.5s in a coarse exponential ladder, sized for wire round
// trips and update pipelines rather than sub-microsecond kernels.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric family: a type, a help string, a label
// schema, and the metrics keyed by their label values.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	mu      sync.Mutex
	metrics map[string]any // label-signature -> *Counter | *Gauge | *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the named family, creating it on first use; a name
// reused with a different type, label schema or bucket layout panics —
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v (was %s%v)", name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets, metrics: map[string]any{}}
	r.families[name] = f
	return f
}

// with returns the family's metric for the given label values, creating
// it with mk on first use.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		m = mk()
		f.metrics[key] = m
	}
	return m
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error; they are not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: observations are counted
// into the first bucket whose upper bound is >= the value, with an
// implicit +Inf overflow bucket, plus a running sum and count.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot returns cumulative per-bucket counts (aligned with Bounds,
// plus the +Inf bucket last), the sum and the total count.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return cumulative, h.sum, h.count
}

// Bounds returns the bucket upper bounds (exclusive of +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, nil, nil)
	return f.with(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, nil, nil)
	return f.with(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (ascending; nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.lookup(name, help, typeHistogram, nil, buckets)
	return f.with(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values.
func (cv *CounterVec) With(values ...string) *Counter {
	return cv.f.with(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	return gv.f.with(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family with
// the given bucket layout (nil means DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return &HistogramVec{r.lookup(name, help, typeHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	return hv.f.with(values, func() any { return newHistogram(hv.f.buckets) }).(*Histogram)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families and series sorted by name so the output is stable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		fams[n] = f
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		fams[n].write(w)
	}
}

// series renders the family's metrics sorted by label signature; each
// entry is (label values, metric).
func (f *family) series() [][2]any {
	f.mu.Lock()
	keys := make([]string, 0, len(f.metrics))
	for k := range f.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][2]any, 0, len(keys))
	for _, k := range keys {
		var values []string
		if k != "" || len(f.labels) > 0 {
			values = strings.Split(k, "\x00")
		}
		out = append(out, [2]any{values, f.metrics[k]})
	}
	f.mu.Unlock()
	return out
}

func (f *family) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range f.series() {
		values, _ := s[0].([]string)
		switch m := s[1].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), m.Value())
		case *Histogram:
			cum, sum, count := m.Snapshot()
			for i, b := range m.Bounds() {
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", formatFloat(b)), cum[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), count)
		}
	}
}

// labelString renders {k="v",...}, appending the extra pair (used for
// le) when extraKey is non-empty; no labels renders as the empty string.
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(v))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler returns an http.Handler serving the Prometheus exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Snapshot renders the registry as a plain map: one entry per series
// ("name" or "name{k=v,...}"), counters and gauges as their integer
// value, histograms as {count, sum, buckets{le: cumulative}}. It is the
// expvar bridge's payload and a convenient test hook.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		for _, s := range f.series() {
			values, _ := s[0].([]string)
			key := f.name + labelString(f.labels, values, "", "")
			switch m := s[1].(type) {
			case *Counter:
				out[key] = m.Value()
			case *Gauge:
				out[key] = m.Value()
			case *Histogram:
				cum, sum, count := m.Snapshot()
				buckets := map[string]uint64{}
				for i, b := range m.Bounds() {
					buckets[formatFloat(b)] = cum[i]
				}
				buckets["+Inf"] = cum[len(cum)-1]
				out[key] = map[string]any{"count": count, "sum": sum, "buckets": buckets}
			}
		}
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name (shown
// at /debug/vars). Publishing the same name twice is a no-op — expvar
// itself panics on duplicates, and restart-style re-wiring should not.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
