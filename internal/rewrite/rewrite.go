// Package rewrite implements the Section 4 update rewritings: given a
// constraint C and an update, build a constraint C' over the pre-update
// database that holds iff C holds after the update. Checking that C
// survives the update then reduces to the subsumption question
// C' ⊑ C ∪ C1 ∪ … ∪ Cn against the constraints known to hold before
// (the paper's first approach in Section 4).
//
// Insertion uses the add-rule encoding of Theorem 4.2 (preserving the
// eight Fig 4.1 classes that permit multiple rules); deletion offers both
// encodings of Theorem 4.3 — the arithmetic <>-split of Example 4.2 and
// the negated-subgoal variant — preserving the six Fig 4.2 classes.
package rewrite

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subsume"
)

// Insert returns the constraint C' reflecting the insertion of t into
// rel: a fresh predicate rel$ins is defined as rel plus the new tuple,
// and every occurrence of rel in c is redirected to it (Theorem 4.2).
func Insert(c *ast.Program, rel string, t relation.Tuple) (*ast.Program, error) {
	arity, uses := relUsage(c, rel)
	if !uses {
		// The constraint does not mention the updated relation: it is
		// trivially unaffected; C' = C.
		return c.Clone(), nil
	}
	if arity != len(t) {
		return nil, fmt.Errorf("rewrite: inserting arity-%d tuple into %s/%d", len(t), rel, arity)
	}
	aux := rel + "$ins"
	if _, clash := c.Preds()[aux]; clash {
		return nil, fmt.Errorf("rewrite: auxiliary predicate %s already in use", aux)
	}
	out := renamePred(c, rel, aux)
	vars := freshVars(arity)
	out.Rules = append(out.Rules,
		ast.NewRule(ast.Atom{Pred: aux, Args: vars}, ast.Pos(ast.Atom{Pred: rel, Args: vars})),
		ast.Fact(ast.Atom{Pred: aux, Args: t.Terms()}),
	)
	return out, nil
}

// DeleteArith returns C' reflecting the deletion of t from rel using the
// arithmetic encoding of Example 4.2: rel$del selects the tuples of rel
// differing from t in at least one component, one rule per component.
func DeleteArith(c *ast.Program, rel string, t relation.Tuple) (*ast.Program, error) {
	return deleteWith(c, rel, t, func(vars []ast.Term, i int) []ast.Literal {
		return []ast.Literal{ast.Cmp(ast.NewComparison(vars[i], ast.Ne, ast.C(t[i])))}
	}, nil)
}

// DeleteNeg returns C' reflecting the deletion of t from rel using the
// negated-subgoal encoding (the isJones trick of Section 4): component i
// differs from t[i] when it is not in the singleton relation is$rel$i.
func DeleteNeg(c *ast.Program, rel string, t relation.Tuple) (*ast.Program, error) {
	var extra []*ast.Rule
	return deleteWith(c, rel, t, func(vars []ast.Term, i int) []ast.Literal {
		pred := fmt.Sprintf("is$%s$%d", rel, i)
		extra = append(extra, ast.Fact(ast.NewAtom(pred, ast.C(t[i]))))
		return []ast.Literal{ast.Neg(ast.NewAtom(pred, vars[i]))}
	}, &extra)
}

// deleteWith shares the per-component split between the two encodings.
func deleteWith(c *ast.Program, rel string, t relation.Tuple, differ func(vars []ast.Term, i int) []ast.Literal, extra *[]*ast.Rule) (*ast.Program, error) {
	arity, uses := relUsage(c, rel)
	if !uses {
		return c.Clone(), nil
	}
	if arity != len(t) {
		return nil, fmt.Errorf("rewrite: deleting arity-%d tuple from %s/%d", len(t), rel, arity)
	}
	if arity == 0 {
		return nil, fmt.Errorf("rewrite: cannot delete from 0-ary relation %s", rel)
	}
	aux := rel + "$del"
	if _, clash := c.Preds()[aux]; clash {
		return nil, fmt.Errorf("rewrite: auxiliary predicate %s already in use", aux)
	}
	out := renamePred(c, rel, aux)
	vars := freshVars(arity)
	for i := 0; i < arity; i++ {
		body := []ast.Literal{ast.Pos(ast.Atom{Pred: rel, Args: vars})}
		body = append(body, differ(vars, i)...)
		out.Rules = append(out.Rules, &ast.Rule{Head: ast.Atom{Pred: aux, Args: vars}, Body: body})
	}
	if extra != nil {
		out.Rules = append(out.Rules, *extra...)
	}
	return out, nil
}

// Rewrite dispatches on the update kind, using the arithmetic deletion
// encoding by default.
func Rewrite(c *ast.Program, u store.Update) (*ast.Program, error) {
	if u.Insert {
		return Insert(c, u.Relation, u.Tuple)
	}
	return DeleteArith(c, u.Relation, u.Tuple)
}

// UpdateSafe performs the Section 4 partial-information test: it rewrites
// c for the update and asks whether the result is subsumed by c together
// with the other constraints known to hold before the update. A Yes
// verdict certifies — from constraints and update alone, no data — that
// c still holds afterwards.
func UpdateSafe(c *ast.Program, others []*ast.Program, u store.Update) (subsume.Result, error) {
	return UpdateSafeAmong(c, append([]*ast.Program{c}, others...), u)
}

// UpdateSafeAmong is UpdateSafe for a caller that already holds the full
// constraint set: set is every constraint known to hold before the update
// and may (should) include c itself, so the per-constraint "rest" slice
// never needs to be materialized. Subsumption is a property of the set —
// order and duplication do not change the verdict — which makes the one
// shared slice reusable across all constraints of an update.
func UpdateSafeAmong(c *ast.Program, set []*ast.Program, u store.Update) (subsume.Result, error) {
	cPrime, err := Rewrite(c, u)
	if err != nil {
		return subsume.Result{}, err
	}
	return subsume.Subsumes(cPrime, set)
}

// relUsage reports the arity of rel within c and whether c mentions it.
func relUsage(c *ast.Program, rel string) (arity int, uses bool) {
	for _, r := range c.Rules {
		for _, l := range r.Body {
			if !l.IsComp() && l.Atom.Pred == rel {
				return l.Atom.Arity(), true
			}
		}
		if r.Head.Pred == rel {
			return r.Head.Arity(), true
		}
	}
	return 0, false
}

// renamePred returns a copy of c with every occurrence of pred renamed.
func renamePred(c *ast.Program, pred, to string) *ast.Program {
	out := c.Clone()
	for _, r := range out.Rules {
		if r.Head.Pred == pred {
			r.Head.Pred = to
		}
		for i := range r.Body {
			if !r.Body[i].IsComp() && r.Body[i].Atom.Pred == pred {
				r.Body[i].Atom.Pred = to
			}
		}
	}
	return out
}

// freshVars returns variables U$1..U$n, a namespace the parser cannot
// produce (user variables cannot contain '$').
func freshVars(n int) []ast.Term {
	vars := make([]ast.Term, n)
	for i := range vars {
		vars[i] = ast.V(fmt.Sprintf("U$%d", i+1))
	}
	return vars
}
