package rewrite

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/subsume"
)

func prog(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

// checkRewriteEquivalence verifies the defining property of a rewriting:
// C' on the pre-update database has the same verdict as C on the
// post-update database, across randomized databases.
func checkRewriteEquivalence(t *testing.T, c *ast.Program, u store.Update, cPrime *ast.Program, trials int, gen func(rng *rand.Rand) *store.Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(12345))
	for i := 0; i < trials; i++ {
		before := gen(rng)
		after := before.Clone()
		if err := u.Apply(after); err != nil {
			t.Fatal(err)
		}
		got, err := eval.PanicHolds(cPrime, before)
		if err != nil {
			t.Fatalf("eval C' on before: %v", err)
		}
		want, err := eval.PanicHolds(c, after)
		if err != nil {
			t.Fatalf("eval C on after: %v", err)
		}
		if got != want {
			t.Fatalf("trial %d: C'(before)=%v but C(after)=%v\nC' = %s\nbefore = %s", i, got, want, cPrime, before)
		}
	}
}

// randomEmpDB draws a small employee database.
func randomEmpDB(rng *rand.Rand) *store.Store {
	db := store.New()
	names := []string{"ann", "bob", "carl", "dina"}
	depts := []string{"toy", "shoe", "sales"}
	for i := 0; i < rng.Intn(6); i++ {
		mustIns(db, "emp", relation.TupleOf(
			ast.Str(names[rng.Intn(len(names))]),
			ast.Str(depts[rng.Intn(len(depts))]),
			ast.Int(int64(rng.Intn(200)))))
	}
	for _, d := range depts {
		if rng.Intn(2) == 0 {
			mustIns(db, "dept", relation.Strs(d))
		}
	}
	return db
}

func mustIns(db *store.Store, rel string, t relation.Tuple) {
	if _, err := db.Insert(rel, t); err != nil {
		panic(err)
	}
}

func TestInsertRewriteExample41(t *testing.T) {
	// C1 with insertion of toy into dept must become the paper's C3.
	c1 := prog(t, "panic :- emp(E,D,S) & not dept(D).")
	u := store.Ins("dept", relation.Strs("toy"))
	c3, err := Insert(c1, "dept", relation.Strs("toy"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c3.Rules) != 3 {
		t.Fatalf("C3 has %d rules, want 3:\n%s", len(c3.Rules), c3)
	}
	checkRewriteEquivalence(t, c1, u, c3, 60, randomEmpDB)
}

func TestInsertRewriteUntouchedRelation(t *testing.T) {
	c2 := prog(t, "panic :- emp(E,D,S) & S > 100.")
	c2p, err := Insert(c2, "dept", relation.Strs("toy"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c2p.Rules) != 1 {
		t.Errorf("constraint not mentioning dept must be unchanged:\n%s", c2p)
	}
}

func TestDeleteRewriteExample42(t *testing.T) {
	// Deleting (jones,shoe,50) from emp: the arithmetic encoding yields
	// three emp$del rules (one per component), as in Example 4.2.
	c1 := prog(t, "panic :- emp(E,D,S) & not dept(D).")
	tup := relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))
	c4, err := DeleteArith(c1, "emp", tup)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c4.Rules); got != 4 { // original rule + 3 split rules
		t.Fatalf("C4 has %d rules, want 4:\n%s", got, c4)
	}
	u := store.Del("emp", tup)
	gen := func(rng *rand.Rand) *store.Store {
		db := randomEmpDB(rng)
		if rng.Intn(2) == 0 {
			mustIns(db, "emp", tup) // make the deletion meaningful half the time
		}
		return db
	}
	checkRewriteEquivalence(t, c1, u, c4, 60, gen)
}

func TestDeleteNegEquivalent(t *testing.T) {
	c1 := prog(t, "panic :- emp(E,D,S) & not dept(D).")
	tup := relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))
	c5, err := DeleteNeg(c1, "emp", tup)
	if err != nil {
		t.Fatal(err)
	}
	u := store.Del("emp", tup)
	gen := func(rng *rand.Rand) *store.Store {
		db := randomEmpDB(rng)
		if rng.Intn(2) == 0 {
			mustIns(db, "emp", tup)
		}
		return db
	}
	checkRewriteEquivalence(t, c1, u, c5, 60, gen)
	// Both encodings must agree with each other on class features.
	if !c5.HasNegation() {
		t.Error("negated encoding has no negation")
	}
	c4, err := DeleteArith(c1, "emp", tup)
	if err != nil {
		t.Fatal(err)
	}
	if !c4.HasComparison() {
		t.Error("arithmetic encoding has no comparison")
	}
}

func TestInsertRewriteRecursive(t *testing.T) {
	// Example 2.4's recursive constraint under insertion into manager.
	c := prog(t, `
		panic :- boss(E,E).
		boss(E,M) :- emp(E,D) & manager(D,M).
		boss(E,F) :- boss(E,G) & boss(G,F).`)
	tup := relation.Strs("ops", "ann")
	cp, err := Insert(c, "manager", tup)
	if err != nil {
		t.Fatal(err)
	}
	u := store.Ins("manager", tup)
	gen := func(rng *rand.Rand) *store.Store {
		db := store.New()
		names := []string{"ann", "bob", "carl"}
		depts := []string{"toy", "shoe", "ops"}
		for i := 0; i < 3; i++ {
			if rng.Intn(2) == 0 {
				mustIns(db, "emp", relation.Strs(names[i], depts[rng.Intn(3)]))
			}
			if rng.Intn(2) == 0 {
				mustIns(db, "manager", relation.Strs(depts[i], names[rng.Intn(3)]))
			}
		}
		return db
	}
	checkRewriteEquivalence(t, c, u, cp, 60, gen)
	if got := classify.Classify(cp); got.Shape != classify.Recursive {
		t.Errorf("recursive constraint left its class: %v", got)
	}
}

func TestFig41InsertionClosure(t *testing.T) {
	// For each representative constraint, the insertion rewriting must
	// stay within the class exactly when Fig 4.1 circles it. Single-CQ
	// classes escape to union shape; all others are preserved.
	reps := map[classify.Class]string{
		{Shape: classify.SingleCQ}:                                    "panic :- dept(D) & boom(D).",
		{Shape: classify.SingleCQ, Arithmetic: true}:                  "panic :- dept(D) & boom(D) & D > 0.",
		{Shape: classify.SingleCQ, Negation: true}:                    "panic :- boom(D) & not dept(D).",
		{Shape: classify.SingleCQ, Negation: true, Arithmetic: true}:  "panic :- boom(D) & not dept(D) & D > 0.",
		{Shape: classify.UnionCQ}:                                     "panic :- dept(D) & boom(D).\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Arithmetic: true}:                   "panic :- dept(D) & boom(D) & D > 0.\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Negation: true}:                     "panic :- boom(D) & not dept(D).\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Negation: true, Arithmetic: true}:   "panic :- boom(D) & not dept(D) & D > 0.\npanic :- dept(D) & bang(D).",
		{Shape: classify.Recursive}:                                   "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D).",
		{Shape: classify.Recursive, Arithmetic: true}:                 "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & D > 0.",
		{Shape: classify.Recursive, Negation: true}:                   "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & not bang(D).",
		{Shape: classify.Recursive, Negation: true, Arithmetic: true}: "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & not bang(D) & D > 0.",
	}
	for cls, src := range reps {
		c := prog(t, src)
		if got := classify.Classify(c); got != cls {
			t.Errorf("representative for %v classifies as %v", cls, got)
			continue
		}
		cp, err := Insert(c, "dept", relation.Ints(7))
		if err != nil {
			t.Errorf("%v: %v", cls, err)
			continue
		}
		after := classify.Classify(cp)
		preserved := after.LessEq(cls)
		if preserved != classify.InsertionClosed(cls) {
			t.Errorf("%v: preserved=%v, Fig 4.1 says %v (rewritten class %v)", cls, preserved, classify.InsertionClosed(cls), after)
		}
	}
}

func TestFig42DeletionClosure(t *testing.T) {
	// Deletion: the <>-encoding adds arithmetic, the negated encoding
	// adds negation; a class is preserved iff it has union/recursive
	// shape and at least one of the features (using the matching
	// encoding), which is exactly Fig 4.2's six circles.
	reps := map[classify.Class]string{
		{Shape: classify.SingleCQ}:                                    "panic :- dept(D) & boom(D).",
		{Shape: classify.SingleCQ, Arithmetic: true}:                  "panic :- dept(D) & boom(D) & D > 0.",
		{Shape: classify.SingleCQ, Negation: true}:                    "panic :- boom(D) & not dept(D).",
		{Shape: classify.SingleCQ, Negation: true, Arithmetic: true}:  "panic :- boom(D) & not dept(D) & D > 0.",
		{Shape: classify.UnionCQ}:                                     "panic :- dept(D) & boom(D).\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Arithmetic: true}:                   "panic :- dept(D) & boom(D) & D > 0.\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Negation: true}:                     "panic :- boom(D) & not dept(D).\npanic :- dept(D) & bang(D).",
		{Shape: classify.UnionCQ, Negation: true, Arithmetic: true}:   "panic :- boom(D) & not dept(D) & D > 0.\npanic :- dept(D) & bang(D).",
		{Shape: classify.Recursive, Arithmetic: true}:                 "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & D > 0.",
		{Shape: classify.Recursive, Negation: true}:                   "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & not bang(D).",
		{Shape: classify.Recursive, Negation: true, Arithmetic: true}: "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D) & not bang(D) & D > 0.",
		{Shape: classify.Recursive}:                                   "r(X) :- dept(X).\nr(X) :- r(X) & r(X).\npanic :- r(D) & boom(D).",
	}
	for cls, src := range reps {
		c := prog(t, src)
		if got := classify.Classify(c); got != cls {
			t.Errorf("representative for %v classifies as %v", cls, got)
			continue
		}
		// Pick the encoding matching the class features: arithmetic
		// encoding for arithmetic classes, negated for negation classes;
		// either for classes with both; arithmetic for neither.
		var cp *ast.Program
		var err error
		if cls.Arithmetic || !cls.Negation {
			cp, err = DeleteArith(c, "dept", relation.Ints(7))
		} else {
			cp, err = DeleteNeg(c, "dept", relation.Ints(7))
		}
		if err != nil {
			t.Errorf("%v: %v", cls, err)
			continue
		}
		after := classify.Classify(cp)
		preserved := after.LessEq(cls)
		if preserved != classify.DeletionClosed(cls) {
			t.Errorf("%v: preserved=%v, Fig 4.2 says %v (rewritten class %v)", cls, preserved, classify.DeletionClosed(cls), after)
		}
	}
}

func TestUpdateSafeExample41(t *testing.T) {
	// Inserting a department cannot violate referential integrity: the
	// Section 4 test must certify it (C3 ⊑ C1, as the paper notes).
	c1 := prog(t, "panic :- emp(E,D,S) & not dept(D).")
	c2 := prog(t, "panic :- emp(E,D,S) & S > 100.")
	r, err := UpdateSafe(c1, []*ast.Program{c2}, store.Ins("dept", relation.Strs("toy")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != subsume.Yes {
		t.Errorf("insertion into dept not certified: %+v", r)
	}
	// Inserting an employee CAN violate it: the test must not certify.
	r, err = UpdateSafe(c1, []*ast.Program{c2},
		store.Ins("emp", relation.TupleOf(ast.Str("x"), ast.Str("ghost"), ast.Int(1))))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict == subsume.Yes {
		t.Errorf("employee insertion wrongly certified: %+v", r)
	}
}

func TestUpdateSafeSalaryCap(t *testing.T) {
	// Deleting an employee cannot violate the salary cap.
	c2 := prog(t, "panic :- emp(E,D,S) & S > 100.")
	r, err := UpdateSafe(c2, nil, store.Del("emp", relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != subsume.Yes {
		t.Errorf("deletion not certified against salary cap: %+v", r)
	}
	// Inserting a low-paid employee cannot violate it either.
	r, err = UpdateSafe(c2, nil, store.Ins("emp", relation.TupleOf(ast.Str("x"), ast.Str("toy"), ast.Int(50))))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != subsume.Yes {
		t.Errorf("low-salary insertion not certified: %+v", r)
	}
	// A high-paid insertion must not be certified.
	r, err = UpdateSafe(c2, nil, store.Ins("emp", relation.TupleOf(ast.Str("x"), ast.Str("toy"), ast.Int(500))))
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict == subsume.Yes {
		t.Errorf("violating insertion certified: %+v", r)
	}
}

func TestRewriteArityMismatch(t *testing.T) {
	c := prog(t, "panic :- dept(D) & boom(D).")
	if _, err := Insert(c, "dept", relation.Ints(1, 2)); err == nil {
		t.Error("arity mismatch accepted on insert")
	}
	if _, err := DeleteArith(c, "dept", relation.Ints(1, 2)); err == nil {
		t.Error("arity mismatch accepted on delete")
	}
}

func TestInsertIntoConstraintWithComparisonOnInserted(t *testing.T) {
	// The inserted tuple's own values flow through the rewriting: after
	// inserting a high salary the constraint must be violated on the
	// pre-update database.
	c := prog(t, "panic :- emp(E,D,S) & S > 100.")
	cp, err := Insert(c, "emp", relation.TupleOf(ast.Str("x"), ast.Str("toy"), ast.Int(500)))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := eval.PanicHolds(cp, store.New())
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Error("C' must fire on the empty database when the inserted tuple itself violates")
	}
}

// TestTheorem41ProofConstruction replays the database construction from
// the paper's Theorem 4.1 proof: on {emp(e,shoe,s), emp(e,toy,s)} with
// dept empty, C3 (C1 rewritten for +dept(toy)) produces panic; adding
// dept(shoe) must not change that (only toy is exempted); whereas the
// post-update constraint on the post-update database agrees with C1.
func TestTheorem41ProofConstruction(t *testing.T) {
	c1 := prog(t, "panic :- emp(E,D,S) & not dept(D).")
	c3, err := Insert(c1, "dept", relation.Strs("toy"))
	if err != nil {
		t.Fatal(err)
	}
	db := store.New()
	mustIns(db, "emp", relation.TupleOf(ast.Str("e"), ast.Str("shoe"), ast.Int(1)))
	mustIns(db, "emp", relation.TupleOf(ast.Str("e"), ast.Str("toy"), ast.Int(1)))
	bad, err := eval.PanicHolds(c3, db)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Error("C3 must panic: the shoe employee's department is missing even after +dept(toy)")
	}
	// The proof's second database: add dept(shoe). Now the only missing
	// department is toy, which the insertion supplies — C3 is quiet.
	mustIns(db, "dept", relation.Strs("shoe"))
	bad, err = eval.PanicHolds(c3, db)
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("C3 must be quiet once shoe exists and toy is exempted")
	}
	// And a hypothetical single-CQ candidate that ignores the exemption —
	// C1 itself — wrongly panics on this database, which is the
	// inexpressibility gap the proof exploits.
	bad, err = eval.PanicHolds(c1, db)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Error("C1 should panic here (toy not yet in dept): the gap the proof exploits")
	}
}

// TestUpdateSafeNeverLies fuzzes the Section 4 certification: whenever
// UpdateSafe answers Yes for a random (constraint, update) pair, applying
// the update to any random database satisfying the constraint must leave
// it satisfied. This covers the whole rewrite→expand→subsume stack,
// including the incomplete sound-mapping branch.
func TestUpdateSafeNeverLies(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	constraints := []*ast.Program{
		prog(t, "panic :- emp(E,D) & not dept(D)."),
		prog(t, "panic :- emp(E,D) & bad(D)."),
		prog(t, "panic :- emp(E,D) & pay(E,S) & S > 1."),
		prog(t, `panic :- emp(E,D) & pay(E,S) & rangeOf(D,H) & S > H.`),
	}
	rels := map[string]int{"emp": 2, "dept": 1, "bad": 1, "pay": 2, "rangeOf": 2}
	randTuple := func(ar int) relation.Tuple {
		tu := make(relation.Tuple, ar)
		for i := range tu {
			tu[i] = ast.Int(int64(rng.Intn(3)))
		}
		return tu
	}
	var names []string
	for rel := range rels {
		names = append(names, rel)
	}
	certified := 0
	for trial := 0; trial < 300; trial++ {
		c := constraints[rng.Intn(len(constraints))]
		rel := names[rng.Intn(len(names))]
		u := store.Update{Insert: rng.Intn(2) == 0, Relation: rel, Tuple: randTuple(rels[rel])}
		res, err := UpdateSafe(c, nil, u)
		if err != nil || res.Verdict != subsume.Yes {
			continue
		}
		certified++
		for probe := 0; probe < 25; probe++ {
			db := store.New()
			for r, ar := range rels {
				db.MustEnsure(r, ar)
				for i := 0; i < rng.Intn(3); i++ {
					if _, err := db.Insert(r, randTuple(ar)); err != nil {
						t.Fatal(err)
					}
				}
			}
			before, err := eval.PanicHolds(c, db)
			if err != nil {
				t.Fatal(err)
			}
			if before {
				continue // certification assumes the constraint held
			}
			if err := u.Apply(db); err != nil {
				t.Fatal(err)
			}
			after, err := eval.PanicHolds(c, db)
			if err != nil {
				t.Fatal(err)
			}
			if after {
				t.Fatalf("UpdateSafe lied: %v certified against %s but violates on %s", u, c, db)
			}
		}
	}
	if certified < 20 {
		t.Fatalf("only %d certifications exercised", certified)
	}
}
