package relation

import (
	"fmt"
	"math/big"
	"sync"
	"testing"

	"repro/internal/ast"
)

// internWorkload returns a mixed set of values exercising every intern
// namespace: int64-fast-path rationals, non-integral rationals, huge
// integers past int64, and strings.
func internWorkload() []ast.Value {
	var vals []ast.Value
	for i := int64(-20); i < 20; i++ {
		vals = append(vals, ast.Int(i))
	}
	for d := int64(2); d < 8; d++ {
		vals = append(vals, ast.Value{Kind: ast.NumberValue, Num: big.NewRat(7, d)})
	}
	huge := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 80))
	vals = append(vals, ast.Value{Kind: ast.NumberValue, Num: huge})
	for i := 0; i < 16; i++ {
		vals = append(vals, ast.Str(fmt.Sprintf("sym-%d", i)))
	}
	return vals
}

func TestInternHandleStability(t *testing.T) {
	for _, v := range internWorkload() {
		h1 := Intern(v)
		// A structurally equal but distinct Value must map to the same
		// handle.
		clone := v
		if v.Kind == ast.NumberValue {
			clone.Num = new(big.Rat).Set(v.Num)
		}
		h2 := Intern(clone)
		if h1 != h2 {
			t.Fatalf("Intern(%s) unstable: %d vs %d", v, h1, h2)
		}
		got := InternedValue(h1)
		if !got.Equal(v) {
			t.Fatalf("InternedValue(%d) = %s, want %s", h1, got, v)
		}
		if ValueKey(v) != v.Key() {
			t.Fatalf("ValueKey(%s) = %q, want %q", v, ValueKey(v), v.Key())
		}
	}
}

func TestInternDistinctValuesDistinctHandles(t *testing.T) {
	vals := internWorkload()
	seen := map[Handle]ast.Value{}
	for _, v := range vals {
		h := Intern(v)
		if prev, ok := seen[h]; ok && !prev.Equal(v) {
			t.Fatalf("handle %d aliases %s and %s", h, prev, v)
		}
		seen[h] = v
	}
	// 1/2 and 2/4 normalize to the same rational, so they must share.
	a := Intern(ast.Value{Kind: ast.NumberValue, Num: big.NewRat(1, 2)})
	b := Intern(ast.Value{Kind: ast.NumberValue, Num: big.NewRat(2, 4)})
	if a != b {
		t.Fatalf("1/2 and 2/4 interned to distinct handles %d, %d", a, b)
	}
	// Numeric "3" and string "3" live in disjoint namespaces.
	if Intern(ast.Int(3)) == Intern(ast.Str("3")) {
		t.Fatal("number 3 and string \"3\" share a handle")
	}
}

// TestInternConcurrent hammers the pool from parallel workers (run under
// -race in CI): every worker interning the same value must observe the
// same handle, and tuple fingerprints must agree with a fingerprint
// computed from the handles each worker saw.
func TestInternConcurrent(t *testing.T) {
	vals := internWorkload()
	const workers = 16
	handles := make([][]Handle, workers)
	fps := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hs := make([]Handle, len(vals))
			// Walk the values in a worker-dependent order so racing
			// first-interns hit different namespaces simultaneously.
			for i := range vals {
				j := (i + w*5) % len(vals)
				hs[j] = Intern(vals[j])
			}
			handles[w] = hs
			fps[w] = Tuple(vals).Fingerprint()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range vals {
			if handles[w][i] != handles[0][i] {
				t.Fatalf("worker %d saw handle %d for %s, worker 0 saw %d",
					w, handles[w][i], vals[i], handles[0][i])
			}
		}
		if fps[w] != fps[0] {
			t.Fatalf("worker %d fingerprint %x != worker 0 %x", w, fps[w], fps[0])
		}
	}
	// The fingerprint derived from the observed handles must equal the
	// Tuple.Fingerprint computed independently.
	if got := fingerprintHandles(handles[0]); got != fps[0] {
		t.Fatalf("fingerprintHandles = %x, Tuple.Fingerprint = %x", got, fps[0])
	}
	// vals holds one duplicate under normalization (7/7 == 1), so count
	// distinct canonical keys rather than slice length.
	distinct := map[string]bool{}
	for _, v := range vals {
		distinct[v.Key()] = true
	}
	if InternSize() < int64(len(distinct)) {
		t.Fatalf("InternSize() = %d, want >= %d", InternSize(), len(distinct))
	}
}

func TestFingerprintMatchesUninternedHashing(t *testing.T) {
	// Two tuples are equal iff their canonical keys are equal; the
	// interned fingerprint must respect that equivalence.
	tuples := []Tuple{
		Ints(1, 2, 3),
		Ints(1, 2, 3),
		Ints(3, 2, 1),
		Strs("a", "b"),
		Strs("a", "b"),
		TupleOf(ast.Int(1), ast.Str("1")),
		TupleOf(ast.Str("1"), ast.Int(1)),
	}
	for i, a := range tuples {
		for j, b := range tuples {
			sameKey := a.Key() == b.Key()
			sameFP := a.Fingerprint() == b.Fingerprint()
			if sameKey && !sameFP {
				t.Fatalf("tuples %d,%d equal by key but fingerprints differ", i, j)
			}
			if !sameKey && sameFP && a.Equal(b) {
				t.Fatalf("tuples %d,%d unequal by key but Equal", i, j)
			}
		}
	}
}
