package relation

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/ast"
)

// Per-column-set hash indexes. A multiIndex buckets tuple positions by
// the fingerprint of the tuple's interned-handle projection onto a fixed
// column set; probing a bucket answers "which tuples agree with these
// bound values" in O(bucket) instead of O(relation). Candidates are
// verified by handle comparison on the probed columns, so a fingerprint
// collision costs a comparison, never a wrong answer. Indexes are built
// lazily on first probe (or eagerly via EnsureIndex), maintained
// incrementally by Insert, tolerate Delete holes (gather skips them),
// and are rebuilt — not dropped — by compactLocked, so a signature once
// requested stays warm for the relation's lifetime.

// multiIndex maps a bound-column projection fingerprint to the positions
// of the tuples holding that projection. cols is sorted ascending.
type multiIndex struct {
	cols    []int
	buckets map[uint64][]int
}

// Process-wide index accounting, exported into the internal/obs registry
// by core (cc_index_builds / cc_index_probes). Builds count full index
// constructions (lazy build, EnsureIndex, compaction rebuild); probes
// count bucket lookups (LookupCols / Index.Probe, single-column Lookup
// included).
var (
	indexBuilds atomic.Int64
	indexProbes atomic.Int64
)

// IndexBuilds returns the process-wide count of hash-index builds.
func IndexBuilds() int64 { return indexBuilds.Load() }

// IndexProbes returns the process-wide count of hash-index probes.
func IndexProbes() int64 { return indexProbes.Load() }

// colsMask encodes a duplicate-free column set as a bitmask — an exact,
// allocation-free map key for the per-column-set indexes. The hash-index
// layer therefore supports relations of up to 64 columns, far beyond any
// arity the constraint language produces.
func colsMask(cols []int) uint64 {
	var m uint64
	for _, c := range cols {
		if c >= 64 {
			panic(fmt.Sprintf("relation: hash indexes support at most 64 columns (column %d)", c))
		}
		m |= 1 << uint(c)
	}
	return m
}

// fingerprintProj fingerprints the projection of a stored handle slice
// onto cols.
func fingerprintProj(hs []Handle, cols []int) uint64 {
	fp := uint64(fnvOffset64)
	for _, c := range cols {
		fp = fingerprintFold(fp, hs[c])
	}
	return fp
}

// checkCols validates the column set against the arity and reports
// whether it is already sorted strictly ascending (the planner always
// emits sorted probe columns, so the hot path never allocates). It
// panics on out-of-range columns and on a cols/vals length mismatch —
// programming errors, like Insert's arity panic.
func (r *Relation) checkCols(cols []int, vals []ast.Value) (sorted bool) {
	if vals != nil && len(cols) != len(vals) {
		panic(fmt.Sprintf("relation: %d columns probed with %d values on %s", len(cols), len(vals), r.name))
	}
	sorted = true
	for i, c := range cols {
		if c < 0 || c >= r.arity {
			panic(fmt.Sprintf("relation: column %d out of range for %s/%d", c, r.name, r.arity))
		}
		if i > 0 && c <= cols[i-1] {
			sorted = false
		}
	}
	return sorted
}

// normalizeCols returns cols sorted strictly ascending along with the
// values permuted to match, copying only when the input is unsorted. It
// panics on duplicate columns.
func (r *Relation) normalizeCols(cols []int, vals []ast.Value) ([]int, []ast.Value) {
	if r.checkCols(cols, vals) {
		return cols, vals
	}
	order := make([]int, len(cols))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cols[order[a]] < cols[order[b]] })
	outCols := make([]int, len(cols))
	var outVals []ast.Value
	if vals != nil {
		outVals = make([]ast.Value, len(vals))
	}
	prev := -1
	for i, o := range order {
		c := cols[o]
		if c == prev {
			panic(fmt.Sprintf("relation: duplicate column %d in index for %s", c, r.name))
		}
		prev = c
		outCols[i] = c
		if vals != nil {
			outVals[i] = vals[o]
		}
	}
	return outCols, outVals
}

// buildLocked constructs the index for the sorted column set. Caller
// holds the write lock.
func (r *Relation) buildLocked(cols []int) *multiIndex {
	mi := &multiIndex{cols: cols, buckets: map[uint64][]int{}}
	for pos, hs := range r.handles {
		if hs != nil {
			k := fingerprintProj(hs, cols)
			mi.buckets[k] = append(mi.buckets[k], pos)
		}
	}
	r.midx[colsMask(cols)] = mi
	indexBuilds.Add(1)
	return mi
}

// EnsureIndex builds the hash index on the given column set if it does
// not exist yet. Probes through LookupCols build lazily anyway; EnsureIndex
// is for warming an index ahead of time (store.Replace uses it to carry
// index signatures onto the fresh relation).
func (r *Relation) EnsureIndex(cols ...int) {
	sorted, _ := r.normalizeCols(cols, nil)
	sig := colsMask(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.midx[sig]; !ok {
		// buildLocked keeps a reference to the column slice; copy so a
		// caller reusing its argument cannot mutate the index's key.
		r.buildLocked(append([]int(nil), sorted...))
	}
}

// IndexSignatures returns the column sets of the indexes currently built
// on the relation, sorted by signature for determinism.
func (r *Relation) IndexSignatures() [][]int {
	r.mu.RLock()
	out := make([][]int, 0, len(r.midx))
	for _, mi := range r.midx {
		out = append(out, append([]int(nil), mi.cols...))
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return colsMask(out[i]) < colsMask(out[j]) })
	return out
}

// gatherMatchLocked appends to dst the live tuples at the indexed
// positions whose handles agree with the probe handles on cols. Caller
// holds mu (read or write).
func (r *Relation) gatherMatchLocked(dst []Tuple, positions []int, cols []int, phs []Handle) []Tuple {
	for _, pos := range positions {
		t := r.tuples[pos]
		if t == nil {
			continue
		}
		hs := r.handles[pos]
		ok := true
		for i, c := range cols {
			if hs[c] != phs[i] {
				ok = false
				break
			}
		}
		if ok {
			dst = append(dst, t)
		}
	}
	return dst
}

// LookupCols returns the tuples whose projection onto cols equals vals,
// using (and lazily building) the hash index on that column set.
func (r *Relation) LookupCols(cols []int, vals []ast.Value) []Tuple {
	return r.LookupColsAppend(nil, cols, vals)
}

// LookupColsAppend is LookupCols appending into dst — the
// allocation-free variant for callers holding a reusable buffer. The
// build is double-checked under the write lock so concurrent readers
// race safely, exactly like the single-column Lookup.
func (r *Relation) LookupColsAppend(dst []Tuple, cols []int, vals []ast.Value) []Tuple {
	sorted, svals := r.normalizeCols(cols, vals)
	var scratch [8]Handle
	phs := scratch[:0]
	fp := uint64(fnvOffset64)
	for _, v := range svals {
		h := Intern(v)
		phs = append(phs, h)
		fp = fingerprintFold(fp, h)
	}
	sig := colsMask(sorted)
	indexProbes.Add(1)
	r.mu.RLock()
	if mi, ok := r.midx[sig]; ok {
		out := r.gatherMatchLocked(dst, mi.buckets[fp], sorted, phs)
		r.mu.RUnlock()
		return out
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	mi, ok := r.midx[sig]
	if !ok {
		mi = r.buildLocked(append([]int(nil), sorted...))
	}
	return r.gatherMatchLocked(dst, mi.buckets[fp], sorted, phs)
}

// Index is a handle on one column-set hash index: Probe returns the
// bucket of tuples whose projection onto the index's columns equals the
// probe values. The handle stays valid across Insert/Delete/compaction —
// it addresses the index by signature, not by pointer.
type Index struct {
	r    *Relation
	cols []int
}

// Index returns a probe handle for the hash index on cols, building the
// index if needed.
func (r *Relation) Index(cols ...int) *Index {
	sorted, _ := r.normalizeCols(cols, nil)
	sorted = append([]int(nil), sorted...)
	r.EnsureIndex(sorted...)
	return &Index{r: r, cols: sorted}
}

// Cols returns the index's column set (sorted ascending).
func (ix *Index) Cols() []int { return append([]int(nil), ix.cols...) }

// Probe returns the tuples bucketed under the given bound-column values
// (in the order of Cols).
func (ix *Index) Probe(vals ...ast.Value) []Tuple {
	return ix.r.LookupCols(ix.cols, vals)
}
