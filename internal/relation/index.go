package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/ast"
)

// Per-column-set hash indexes. A multiIndex buckets tuple positions by
// the canonical key of the tuple's projection onto a fixed column set;
// probing a bucket answers "which tuples agree with these bound values"
// in O(bucket) instead of O(relation). Indexes are built lazily on first
// probe (or eagerly via EnsureIndex), maintained incrementally by
// Insert, tolerate Delete holes (gather skips them), and are rebuilt —
// not dropped — by compactLocked, so a signature once requested stays
// warm for the relation's lifetime.

// multiIndex maps a bound-column projection key to the positions of the
// tuples holding that projection. cols is sorted ascending.
type multiIndex struct {
	cols    []int
	buckets map[string][]int
}

// Process-wide index accounting, exported into the internal/obs registry
// by core (cc_index_builds / cc_index_probes). Builds count full index
// constructions (lazy build, EnsureIndex, compaction rebuild); probes
// count bucket lookups (LookupCols / Index.Probe, single-column Lookup
// included).
var (
	indexBuilds atomic.Int64
	indexProbes atomic.Int64
)

// IndexBuilds returns the process-wide count of hash-index builds.
func IndexBuilds() int64 { return indexBuilds.Load() }

// IndexProbes returns the process-wide count of hash-index probes.
func IndexProbes() int64 { return indexProbes.Load() }

// colsSignature canonicalizes a sorted column set ("0,2") for the index
// map key.
func colsSignature(cols []int) string {
	var sb strings.Builder
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// projKey encodes the tuple's projection onto cols, unique per
// projection value (the Tuple.Key length-prefixed scheme).
func projKey(t Tuple, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		k := t[c].Key()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
		sb.WriteByte('|')
	}
	return sb.String()
}

// valsKey encodes probe values in the same scheme as projKey.
func valsKey(vals []ast.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		k := v.Key()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
		sb.WriteByte('|')
	}
	return sb.String()
}

// normalizeCols validates the column set against the arity and returns a
// sorted copy along with the values permuted to match. It panics on
// out-of-range or duplicate columns and on a cols/vals length mismatch —
// programming errors, like Insert's arity panic.
func (r *Relation) normalizeCols(cols []int, vals []ast.Value) ([]int, []ast.Value) {
	if vals != nil && len(cols) != len(vals) {
		panic(fmt.Sprintf("relation: %d columns probed with %d values on %s", len(cols), len(vals), r.name))
	}
	order := make([]int, len(cols))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cols[order[a]] < cols[order[b]] })
	outCols := make([]int, len(cols))
	var outVals []ast.Value
	if vals != nil {
		outVals = make([]ast.Value, len(vals))
	}
	prev := -1
	for i, o := range order {
		c := cols[o]
		if c < 0 || c >= r.arity {
			panic(fmt.Sprintf("relation: column %d out of range for %s/%d", c, r.name, r.arity))
		}
		if c == prev {
			panic(fmt.Sprintf("relation: duplicate column %d in index for %s", c, r.name))
		}
		prev = c
		outCols[i] = c
		if vals != nil {
			outVals[i] = vals[o]
		}
	}
	return outCols, outVals
}

// buildLocked constructs the index for the sorted column set. Caller
// holds the write lock.
func (r *Relation) buildLocked(cols []int) *multiIndex {
	mi := &multiIndex{cols: cols, buckets: map[string][]int{}}
	for pos, t := range r.tuples {
		if t != nil {
			k := projKey(t, cols)
			mi.buckets[k] = append(mi.buckets[k], pos)
		}
	}
	r.midx[colsSignature(cols)] = mi
	indexBuilds.Add(1)
	return mi
}

// EnsureIndex builds the hash index on the given column set if it does
// not exist yet. Probes through LookupCols build lazily anyway; EnsureIndex
// is for warming an index ahead of time (store.Replace uses it to carry
// index signatures onto the fresh relation).
func (r *Relation) EnsureIndex(cols ...int) {
	sorted, _ := r.normalizeCols(cols, nil)
	sig := colsSignature(sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.midx[sig]; !ok {
		r.buildLocked(sorted)
	}
}

// IndexSignatures returns the column sets of the indexes currently built
// on the relation, sorted by signature for determinism.
func (r *Relation) IndexSignatures() [][]int {
	r.mu.RLock()
	sigs := make([]string, 0, len(r.midx))
	for sig := range r.midx {
		sigs = append(sigs, sig)
	}
	bySig := make(map[string][]int, len(r.midx))
	for sig, mi := range r.midx {
		bySig[sig] = append([]int(nil), mi.cols...)
	}
	r.mu.RUnlock()
	sort.Strings(sigs)
	out := make([][]int, len(sigs))
	for i, sig := range sigs {
		out[i] = bySig[sig]
	}
	return out
}

// LookupCols returns the tuples whose projection onto cols equals vals,
// using (and lazily building) the hash index on that column set. The
// build is double-checked under the write lock so concurrent readers
// race safely, exactly like the single-column Lookup.
func (r *Relation) LookupCols(cols []int, vals []ast.Value) []Tuple {
	sorted, svals := r.normalizeCols(cols, vals)
	sig := colsSignature(sorted)
	key := valsKey(svals)
	indexProbes.Add(1)
	r.mu.RLock()
	if mi, ok := r.midx[sig]; ok {
		out := r.gatherLocked(mi.buckets[key])
		r.mu.RUnlock()
		return out
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	mi, ok := r.midx[sig]
	if !ok {
		mi = r.buildLocked(sorted)
	}
	return r.gatherLocked(mi.buckets[key])
}

// Index is a handle on one column-set hash index: Probe returns the
// bucket of tuples whose projection onto the index's columns equals the
// probe values. The handle stays valid across Insert/Delete/compaction —
// it addresses the index by signature, not by pointer.
type Index struct {
	r    *Relation
	cols []int
}

// Index returns a probe handle for the hash index on cols, building the
// index if needed.
func (r *Relation) Index(cols ...int) *Index {
	sorted, _ := r.normalizeCols(cols, nil)
	r.EnsureIndex(sorted...)
	return &Index{r: r, cols: sorted}
}

// Cols returns the index's column set (sorted ascending).
func (ix *Index) Cols() []int { return append([]int(nil), ix.cols...) }

// Probe returns the tuples bucketed under the given bound-column values
// (in the order of Cols).
func (ix *Index) Probe(vals ...ast.Value) []Tuple {
	return ix.r.LookupCols(ix.cols, vals)
}
