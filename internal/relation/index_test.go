package relation

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ast"
)

// bruteLookup is the index oracle: filter the full snapshot on the
// bound columns.
func bruteLookup(r *Relation, cols []int, vals []ast.Value) []Tuple {
	var out []Tuple
	for _, tu := range r.Tuples() {
		ok := true
		for i, c := range cols {
			if !tu[c].Equal(vals[i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, tu)
		}
	}
	return out
}

func sameTupleSet(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[string]int{}
	for _, tu := range a {
		seen[tu.Key()]++
	}
	for _, tu := range b {
		seen[tu.Key()]--
	}
	for _, n := range seen {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestLookupColsAgainstBruteForce(t *testing.T) {
	// Random insert/delete workload, cross-checked against a full-scan
	// filter on several column sets after every batch. The small value
	// domain forces bucket sharing, duplicates and deletions of present
	// tuples.
	rng := rand.New(rand.NewSource(7))
	r := New("r", 3)
	colSets := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}, {2, 0}}
	for batch := 0; batch < 30; batch++ {
		for i := 0; i < 40; i++ {
			tu := Ints(int64(rng.Intn(4)), int64(rng.Intn(4)), int64(rng.Intn(4)))
			if rng.Intn(3) == 0 {
				r.Delete(tu)
			} else {
				r.Insert(tu)
			}
		}
		for _, cols := range colSets {
			vals := make([]ast.Value, len(cols))
			for i := range vals {
				vals[i] = ast.Int(int64(rng.Intn(4)))
			}
			got := r.LookupCols(cols, vals)
			want := bruteLookup(r, cols, vals)
			if !sameTupleSet(got, want) {
				t.Fatalf("batch %d cols %v vals %v: LookupCols = %v, brute force = %v", batch, cols, vals, got, want)
			}
		}
	}
}

func TestIndexPersistsAcrossCompaction(t *testing.T) {
	r := New("r", 2)
	r.EnsureIndex(0, 1)
	for i := int64(0); i < 1000; i++ {
		r.Insert(Ints(i%10, i))
	}
	for i := int64(0); i < 900; i++ {
		r.Delete(Ints(i%10, i))
	}
	// 900 deletes on 1000 tuples crosses the compaction threshold; the
	// signature must survive the rebuild and answer correctly.
	sigs := r.IndexSignatures()
	found := false
	for _, cols := range sigs {
		if len(cols) == 2 && cols[0] == 0 && cols[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("index (0,1) dropped by compaction; signatures = %v", sigs)
	}
	got := r.LookupCols([]int{0, 1}, []ast.Value{ast.Int(950 % 10), ast.Int(950)})
	if len(got) != 1 {
		t.Fatalf("probe after compaction = %d tuples, want 1", len(got))
	}
}

func TestIndexHandle(t *testing.T) {
	r := New("r", 3)
	r.Insert(Ints(1, 2, 3))
	r.Insert(Ints(1, 5, 3))
	ix := r.Index(2, 0) // columns given unsorted
	if cols := ix.Cols(); len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("Cols = %v, want [0 2]", cols)
	}
	// Probe values follow Cols order: col 0 then col 2.
	if got := ix.Probe(ast.Int(1), ast.Int(3)); len(got) != 2 {
		t.Fatalf("Probe = %d tuples, want 2", len(got))
	}
	// The handle stays valid across mutation.
	r.Insert(Ints(1, 9, 3))
	r.Delete(Ints(1, 2, 3))
	if got := ix.Probe(ast.Int(1), ast.Int(3)); len(got) != 2 {
		t.Fatalf("Probe after mutation = %d tuples, want 2", len(got))
	}
}

func TestIndexColumnValidation(t *testing.T) {
	r := New("r", 2)
	for _, cols := range [][]int{{2}, {-1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cols %v: no panic", cols)
				}
			}()
			r.EnsureIndex(cols...)
		}()
	}
	// cols/vals length mismatch.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch: no panic")
			}
		}()
		r.LookupCols([]int{0, 1}, []ast.Value{ast.Int(1)})
	}()
}

func TestIndexCounters(t *testing.T) {
	b0, p0 := IndexBuilds(), IndexProbes()
	r := New("r", 2)
	r.Insert(Ints(1, 2))
	r.LookupCols([]int{0, 1}, []ast.Value{ast.Int(1), ast.Int(2)}) // lazy build + probe
	r.LookupCols([]int{0, 1}, []ast.Value{ast.Int(1), ast.Int(2)}) // probe only
	if IndexBuilds()-b0 < 1 {
		t.Error("IndexBuilds did not advance on a lazy build")
	}
	if IndexProbes()-p0 < 2 {
		t.Error("IndexProbes did not advance on probes")
	}
}

func TestConcurrentIndexedAccess(t *testing.T) {
	// Races between lazy index builds, probes and mutation; meaningful
	// under -race.
	r := New("r", 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				tu := Ints(int64(rng.Intn(5)), int64(rng.Intn(5)))
				switch rng.Intn(4) {
				case 0:
					r.Insert(tu)
				case 1:
					r.Delete(tu)
				case 2:
					r.LookupCols([]int{0, 1}, []ast.Value{tu[0], tu[1]})
				default:
					r.Lookup(1, tu[1])
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Post-race sanity: every probe must agree with the scan oracle.
	for a := int64(0); a < 5; a++ {
		for b := int64(0); b < 5; b++ {
			vals := []ast.Value{ast.Int(a), ast.Int(b)}
			if got, want := r.LookupCols([]int{0, 1}, vals), bruteLookup(r, []int{0, 1}, vals); !sameTupleSet(got, want) {
				t.Fatalf("probe (%d,%d) = %v, scan = %v", a, b, got, want)
			}
		}
	}
}
