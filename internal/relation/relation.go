// Package relation provides the relational data substrate: tuples of
// constants and named relations with hash indexes. It is deliberately
// small — an in-memory column-agnostic heap of tuples with exact-match
// indexes — because the paper's algorithms only need insert, delete,
// scan, and indexed lookup.
//
// Constants are interned process-wide (see intern.go): every stored
// tuple carries a precomputed handle slice and fingerprint, so
// membership tests, dedup and index maintenance compare dense integers
// instead of rebuilding canonical key strings.
//
// Relations are safe for concurrent use: any number of readers may scan,
// probe and perform indexed lookups (lazy column-index construction
// included) while writers insert and delete. Stored tuples are never
// mutated after insertion, so snapshots handed out by Tuples/Each may be
// shared freely.
package relation

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ast"
)

// Tuple is an ordered list of constants.
type Tuple []ast.Value

// TupleOf builds a tuple from values.
func TupleOf(vals ...ast.Value) Tuple { return Tuple(vals) }

// Ints builds a numeric tuple from integers.
func Ints(ns ...int64) Tuple {
	t := make(Tuple, len(ns))
	for i, n := range ns {
		t[i] = ast.Int(n)
	}
	return t
}

// Strs builds a symbolic tuple from strings.
func Strs(ss ...string) Tuple {
	t := make(Tuple, len(ss))
	for i, s := range ss {
		t[i] = ast.Str(s)
	}
	return t
}

// Key returns a canonical encoding of the tuple, unique per tuple value.
func (t Tuple) Key() string {
	var sb strings.Builder
	for _, v := range t {
		k := ValueKey(v)
		sb.WriteString(fmt.Sprintf("%d:", len(k)))
		sb.WriteString(k)
		sb.WriteByte('|')
	}
	return sb.String()
}

// Equal reports whether two tuples hold the same constants.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Terms converts the tuple to a list of constant terms.
func (t Tuple) Terms() []ast.Term {
	out := make([]ast.Term, len(t))
	for i, v := range t {
		out[i] = ast.C(v)
	}
	return out
}

// String renders the tuple as (v1,…,vn).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// TermsToTuple converts a list of ground terms into a tuple; it fails if
// any term is a variable.
func TermsToTuple(terms []ast.Term) (Tuple, error) {
	t := make(Tuple, len(terms))
	for i, tm := range terms {
		if tm.IsVar() {
			return nil, fmt.Errorf("relation: term %s is not ground", tm)
		}
		t[i] = tm.Const
	}
	return t, nil
}

// Relation is a named set of same-arity tuples. Insertion order is
// preserved for deterministic iteration. The zero value is not usable;
// call New.
type Relation struct {
	name  string
	arity int

	mu      sync.RWMutex
	tuples  []Tuple    // live tuples in insertion order, nil holes after delete
	handles [][]Handle // interned handles, parallel to tuples (nil holes too)
	count   int        // number of live tuples
	holes   int        // number of nil holes in tuples
	// index buckets tuple positions by whole-tuple fingerprint; bucket
	// candidates are verified by handle comparison (collisions cost a
	// probe, never an answer). Positions of deleted tuples linger as nil
	// holes until compaction.
	index map[uint64][]int
	// midx holds the lazily built per-column-set hash indexes, keyed by
	// column bitmask; see index.go.
	midx map[uint64]*multiIndex
}

// New creates an empty relation with the given name and arity.
func New(name string, arity int) *Relation {
	return &Relation{name: name, arity: arity, index: map[uint64][]int{}, midx: map[uint64]*multiIndex{}}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the relation arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count
}

// findLocked returns the live position holding the tuple with the given
// handles, or -1. Caller holds mu.
func (r *Relation) findLocked(fp uint64, hs []Handle) int {
	for _, pos := range r.index[fp] {
		if r.tuples[pos] != nil && handlesEqual(r.handles[pos], hs) {
			return pos
		}
	}
	return -1
}

// Contains reports whether the relation holds t.
func (r *Relation) Contains(t Tuple) bool {
	var scratch [8]Handle
	hs, fp := internTuple(t, scratch[:0])
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.findLocked(fp, hs) >= 0
}

// Insert adds t; it reports whether the relation changed (false if the
// tuple was already present). It panics on arity mismatch, which is a
// programming error. The tuple is copied: callers may reuse t's backing
// array afterwards.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into %s/%d", len(t), r.name, r.arity))
	}
	hs, fp := internTuple(t, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.findLocked(fp, hs) >= 0 {
		return false
	}
	pos := len(r.tuples)
	r.tuples = append(r.tuples, t.Clone())
	r.handles = append(r.handles, hs)
	r.index[fp] = append(r.index[fp], pos)
	r.count++
	for _, mi := range r.midx {
		pk := fingerprintProj(hs, mi.cols)
		mi.buckets[pk] = append(mi.buckets[pk], pos)
	}
	return true
}

// Delete removes t; it reports whether the tuple was present.
func (r *Relation) Delete(t Tuple) bool {
	var scratch [8]Handle
	hs, fp := internTuple(t, scratch[:0])
	r.mu.Lock()
	defer r.mu.Unlock()
	pos := r.findLocked(fp, hs)
	if pos < 0 {
		return false
	}
	r.tuples[pos] = nil
	r.handles[pos] = nil
	r.count--
	r.holes++
	if r.holes > r.count && r.holes > 64 {
		r.compactLocked()
	}
	return true
}

// Reset empties the relation in place, keeping the allocated backing
// storage and the built index signatures warm. The semi-naive evaluator
// uses it to recycle delta relations across rounds instead of
// allocating fresh ones.
func (r *Relation) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tuples = r.tuples[:0]
	r.handles = r.handles[:0]
	r.count, r.holes = 0, 0
	clear(r.index)
	for _, mi := range r.midx {
		clear(mi.buckets)
	}
}

// compactLocked removes holes and rebuilds indexes. Caller holds mu. A
// fresh backing array is allocated so snapshots handed out earlier are
// never scribbled over. Hash indexes are rebuilt in place, not dropped:
// a signature once requested stays warm across compaction.
func (r *Relation) compactLocked() {
	live := make([]Tuple, 0, r.count)
	liveH := make([][]Handle, 0, r.count)
	for i, t := range r.tuples {
		if t != nil {
			live = append(live, t)
			liveH = append(liveH, r.handles[i])
		}
	}
	r.tuples = live
	r.handles = liveH
	r.count = len(live)
	r.holes = 0
	r.index = make(map[uint64][]int, len(live))
	for i, hs := range liveH {
		fp := fingerprintHandles(hs)
		r.index[fp] = append(r.index[fp], i)
	}
	sigs := r.midx
	r.midx = make(map[uint64]*multiIndex, len(sigs))
	for _, mi := range sigs {
		r.buildLocked(mi.cols)
	}
}

// snapshot returns the live tuples in insertion order. The slice is fresh
// but the tuples are shared (they are immutable once stored).
func (r *Relation) snapshot() []Tuple { return r.TuplesAppend(nil) }

// TuplesAppend appends the live tuples in insertion order to dst and
// returns the extended slice — the allocation-free variant of Tuples
// for callers holding a reusable buffer.
func (r *Relation) TuplesAppend(dst []Tuple) []Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if dst == nil {
		dst = make([]Tuple, 0, r.count)
	}
	for _, t := range r.tuples {
		if t != nil {
			dst = append(dst, t)
		}
	}
	return dst
}

// Each calls f for every tuple in insertion order; f must not mutate the
// tuples. Iteration stops early if f returns false. f runs outside the
// relation's lock (on a snapshot), so it may call back into the relation.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, t := range r.snapshot() {
		if !f(t) {
			return
		}
	}
}

// Tuples returns a snapshot slice of all tuples in insertion order.
func (r *Relation) Tuples() []Tuple { return r.snapshot() }

// Lookup returns the tuples whose column col equals v — the one-column
// special case of LookupCols, kept for its lighter call sites.
func (r *Relation) Lookup(col int, v ast.Value) []Tuple {
	return r.LookupCols([]int{col}, []ast.Value{v})
}

// Clone returns a deep copy of the relation (indexes are rebuilt lazily).
func (r *Relation) Clone() *Relation {
	out := New(r.name, r.arity)
	r.Each(func(t Tuple) bool { out.Insert(t); return true })
	return out
}

// Equal reports whether two relations hold the same set of tuples.
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() {
		return false
	}
	eq := true
	r.Each(func(t Tuple) bool {
		if !o.Contains(t) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// String renders the relation as name{(..),(..)} with tuples in insertion
// order.
func (r *Relation) String() string {
	var parts []string
	r.Each(func(t Tuple) bool { parts = append(parts, t.String()); return true })
	return r.name + "{" + strings.Join(parts, ",") + "}"
}
