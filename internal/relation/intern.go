package relation

import (
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
)

// Value interning. Every constant that flows through the relational
// substrate — exact rationals and strings alike — is mapped to a dense
// process-local Handle, so the hot paths compare and hash small integers
// instead of rebuilding canonical key strings (Value.Key allocates a
// fresh string per call, and big.Rat comparison walks limbs). The pool
// also memoizes each value's canonical key string and a pooled
// representative Value, so key rendering and wire encoding reuse one
// allocation per distinct constant for the process lifetime.
//
// Interning is strictly process-local: the wire format (internal/netdist)
// still carries canonical exact values, and decode re-interns on arrival.
// Handles are never persisted or exchanged.
//
// The pool is safe for concurrent use (read-mostly RWMutex; the fast
// path after warm-up is one read-locked map lookup). Same value ⇒ same
// handle and distinct values ⇒ distinct handles, for the process
// lifetime: big.Rat is always kept normalized, so RatString is a
// canonical form and the numeric maps cannot alias.

// Handle is a dense process-local identifier for an interned constant.
// Handles of equal values are equal; handles of distinct values differ.
type Handle uint32

// pool is the process-wide intern pool.
type pool struct {
	mu sync.RWMutex
	// ints fast-paths the dominant case: integral rationals that fit in
	// an int64 (no string rendering needed to key them).
	ints map[int64]Handle
	// rats keys every other rational by its canonical RatString.
	rats map[string]Handle
	// strs keys symbolic constants by their text.
	strs map[string]Handle
	// values[h] is the pooled representative; keys[h] its canonical
	// Value.Key rendering, precomputed once.
	values []ast.Value
	keys   []string
	size   atomic.Int64 // len(values), readable without the lock
}

var internPool = &pool{
	ints: map[int64]Handle{},
	rats: map[string]Handle{},
	strs: map[string]Handle{},
}

// lookupLocked finds v's handle under a held read or write lock. The
// rendered rat key is returned so the insert path can reuse it.
func (p *pool) lookupLocked(v ast.Value, ratKey string) (Handle, bool) {
	if v.Kind == ast.StringValue {
		h, ok := p.strs[v.Str]
		return h, ok
	}
	if ratKey == "" {
		h, ok := p.ints[v.Num.Num().Int64()]
		return h, ok
	}
	h, ok := p.rats[ratKey]
	return h, ok
}

// Intern returns the dense handle for v, registering it on first use.
func Intern(v ast.Value) Handle {
	p := internPool
	// Render the slow-path numeric key outside the lock: RatString
	// allocates, and only non-int64 rationals need it.
	ratKey := ""
	if v.Kind == ast.NumberValue && !(v.Num.IsInt() && v.Num.Num().IsInt64()) {
		ratKey = v.Num.RatString()
	}
	p.mu.RLock()
	h, ok := p.lookupLocked(v, ratKey)
	p.mu.RUnlock()
	if ok {
		return h
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.lookupLocked(v, ratKey); ok {
		return h // a concurrent interner won the race
	}
	h = Handle(len(p.values))
	// Store a private copy of the value so later mutation of a caller's
	// big.Rat cannot corrupt the pool (Values are treated as immutable
	// repo-wide, but the pool outlives any caller).
	stored := v
	if v.Kind == ast.NumberValue {
		stored.Num = new(big.Rat).SetFrac(v.Num.Num(), v.Num.Denom())
	}
	p.values = append(p.values, stored)
	p.keys = append(p.keys, stored.Key())
	switch {
	case v.Kind == ast.StringValue:
		p.strs[v.Str] = h
	case ratKey == "":
		p.ints[v.Num.Num().Int64()] = h
	default:
		p.rats[ratKey] = h
	}
	p.size.Store(int64(len(p.values)))
	return h
}

// InternedValue returns the pooled representative for h.
func InternedValue(h Handle) ast.Value {
	p := internPool
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.values[h]
}

// Canonical returns the pooled representative equal to v, interning it
// on first use. The netdist decode path funnels every wire constant
// through Canonical so duplicated remote values share one backing
// big.Rat/string and arrive pre-interned for fingerprinting.
func Canonical(v ast.Value) ast.Value {
	return InternedValue(Intern(v))
}

// ValueKey returns v's canonical Value.Key rendering from the pool's
// precomputed table — byte-identical to v.Key(), without rebuilding it.
func ValueKey(v ast.Value) string {
	h := Intern(v)
	p := internPool
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.keys[h]
}

// InternSize returns the number of distinct constants interned so far
// (exported into the obs registry as the cc_intern_size gauge).
func InternSize() int64 { return internPool.size.Load() }

// Tuple fingerprints: an FNV-1a fold over the tuple's interned handles.
// Equal tuples always agree (same values ⇒ same handles); the relation
// layer treats the fingerprint as a hash — bucket candidates are still
// verified by handle comparison, so a collision costs a probe, never an
// answer.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fingerprintFold folds one handle into a running fingerprint.
func fingerprintFold(fp uint64, h Handle) uint64 {
	fp ^= uint64(h)
	fp *= fnvPrime64
	fp ^= uint64(h) >> 16 // stir the high bits back in
	fp *= fnvPrime64
	return fp
}

// fingerprintHandles fingerprints a full handle slice.
func fingerprintHandles(hs []Handle) uint64 {
	fp := uint64(fnvOffset64)
	for _, h := range hs {
		fp = fingerprintFold(fp, h)
	}
	return fp
}

// Fingerprint returns the tuple's interned fingerprint: equal tuples
// agree, distinct tuples collide only with hash probability.
func (t Tuple) Fingerprint() uint64 {
	fp := uint64(fnvOffset64)
	for _, v := range t {
		fp = fingerprintFold(fp, Intern(v))
	}
	return fp
}

// internTuple interns every component of t into dst (resized as
// needed) and returns the handle slice alongside the fingerprint.
func internTuple(t Tuple, dst []Handle) ([]Handle, uint64) {
	if cap(dst) < len(t) {
		dst = make([]Handle, len(t))
	}
	dst = dst[:len(t)]
	fp := uint64(fnvOffset64)
	for i, v := range t {
		h := Intern(v)
		dst[i] = h
		fp = fingerprintFold(fp, h)
	}
	return dst, fp
}

// handlesEqual reports whether two handle slices are identical.
func handlesEqual(a, b []Handle) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
