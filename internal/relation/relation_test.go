package relation

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
)

func TestTupleKeyUnambiguous(t *testing.T) {
	// Length-prefixed encoding must keep ("ab","c") and ("a","bc") apart.
	a := Strs("ab", "c")
	b := Strs("a", "bc")
	if a.Key() == b.Key() {
		t.Error("tuple keys collide across component boundaries")
	}
	if !a.Equal(Strs("ab", "c")) {
		t.Error("Equal failed on identical tuples")
	}
	if a.Equal(b) {
		t.Error("Equal succeeded on distinct tuples")
	}
}

func TestInsertDeleteContains(t *testing.T) {
	r := New("emp", 3)
	jones := TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))
	if !r.Insert(jones) {
		t.Error("first insert reported no change")
	}
	if r.Insert(jones) {
		t.Error("duplicate insert reported change")
	}
	if r.Len() != 1 || !r.Contains(jones) {
		t.Error("relation state wrong after insert")
	}
	if !r.Delete(jones) {
		t.Error("delete of present tuple reported no change")
	}
	if r.Delete(jones) {
		t.Error("delete of absent tuple reported change")
	}
	if r.Len() != 0 || r.Contains(jones) {
		t.Error("relation state wrong after delete")
	}
}

func TestEachOrderAndSnapshot(t *testing.T) {
	r := New("r", 1)
	for i := int64(0); i < 10; i++ {
		r.Insert(Ints(i))
	}
	r.Delete(Ints(3))
	ts := r.Tuples()
	if len(ts) != 9 {
		t.Fatalf("len = %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1][0].Compare(ts[i][0]) >= 0 {
			t.Error("insertion order not preserved")
		}
	}
}

func TestLookup(t *testing.T) {
	r := New("emp", 2)
	r.Insert(Strs("a", "sales"))
	r.Insert(Strs("b", "sales"))
	r.Insert(Strs("c", "toy"))
	got := r.Lookup(1, ast.Str("sales"))
	if len(got) != 2 {
		t.Fatalf("Lookup(sales) = %d tuples, want 2", len(got))
	}
	// The index must stay correct across subsequent inserts and deletes.
	r.Insert(Strs("d", "sales"))
	r.Delete(Strs("a", "sales"))
	got = r.Lookup(1, ast.Str("sales"))
	if len(got) != 2 {
		t.Fatalf("Lookup(sales) after mutation = %d tuples, want 2", len(got))
	}
	for _, tu := range got {
		if tu[0].Equal(ast.Str("a")) {
			t.Error("deleted tuple returned by Lookup")
		}
	}
}

func TestCompaction(t *testing.T) {
	r := New("r", 1)
	for i := int64(0); i < 1000; i++ {
		r.Insert(Ints(i))
	}
	for i := int64(0); i < 900; i++ {
		r.Delete(Ints(i))
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := int64(900); i < 1000; i++ {
		if !r.Contains(Ints(i)) {
			t.Fatalf("tuple %d missing after compaction", i)
		}
	}
	if got := r.Lookup(0, ast.Int(950)); len(got) != 1 {
		t.Errorf("Lookup after compaction = %d tuples", len(got))
	}
}

func TestCloneAndEqual(t *testing.T) {
	r := New("r", 2)
	r.Insert(Ints(1, 2))
	r.Insert(Ints(3, 4))
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone not equal")
	}
	c.Insert(Ints(5, 6))
	if r.Equal(c) {
		t.Error("mutating clone affected equality")
	}
	if r.Len() != 2 {
		t.Error("mutating clone affected original")
	}
}

func TestRandomizedSetSemantics(t *testing.T) {
	// The relation must behave exactly like a map-based set under a
	// random workload.
	rng := rand.New(rand.NewSource(1))
	r := New("r", 2)
	ref := map[string]Tuple{}
	for i := 0; i < 5000; i++ {
		tu := Ints(int64(rng.Intn(30)), int64(rng.Intn(30)))
		if rng.Intn(2) == 0 {
			r.Insert(tu)
			ref[tu.Key()] = tu
		} else {
			r.Delete(tu)
			delete(ref, tu.Key())
		}
	}
	if r.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", r.Len(), len(ref))
	}
	for _, tu := range ref {
		if !r.Contains(tu) {
			t.Fatalf("missing tuple %v", tu)
		}
	}
}

func TestTermsToTuple(t *testing.T) {
	tu, err := TermsToTuple([]ast.Term{ast.CInt(1), ast.CStr("a")})
	if err != nil || len(tu) != 2 {
		t.Fatalf("TermsToTuple: %v %v", tu, err)
	}
	if _, err := TermsToTuple([]ast.Term{ast.V("X")}); err == nil {
		t.Error("variable accepted as tuple component")
	}
}

func TestAccessors(t *testing.T) {
	r := New("emp", 2)
	if r.Name() != "emp" || r.Arity() != 2 {
		t.Error("accessors wrong")
	}
	tu := TupleOf(ast.Str("a"), ast.Int(1))
	terms := tu.Terms()
	if len(terms) != 2 || !terms[0].IsConst() {
		t.Errorf("Terms = %v", terms)
	}
	if got := tu.String(); got != "(a,1)" {
		t.Errorf("Tuple String = %q", got)
	}
	r.Insert(tu)
	if got := r.String(); got != "emp{(a,1)}" {
		t.Errorf("Relation String = %q", got)
	}
}
