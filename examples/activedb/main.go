// Activedb: the paper's active-database application (Section 2,
// "Applications"): rules "if C holds, perform action A" are constraints
// panic :- C whose derivation triggers A. The engine uses the Section 4
// rewriting as a triggering filter — updates provably independent of a
// rule's condition never evaluate it — and the example prints how many
// evaluations the filter saves.
//
//	go run ./examples/activedb
package main

import (
	"fmt"
	"log"

	"repro/internal/active"
	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func main() {
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram(`
		dept(toy). dept(shoe).
	`)); err != nil {
		log.Fatal(err)
	}
	engine := active.NewEngine(db)

	// Rule 1: employees of unknown departments trigger an audit entry.
	if err := engine.AddRule("audit-unknown-dept",
		"panic :- emp(E,D,S) & not dept(D).",
		active.InsertAction(store.Ins("audit", relation.Strs("unknown-dept")))); err != nil {
		log.Fatal(err)
	}
	// Rule 2: any salary above 100 triggers a payroll review…
	if err := engine.AddRule("payroll-review",
		"panic :- emp(E,D,S) & S > 100.",
		active.InsertAction(store.Ins("review", relation.Strs("payroll")))); err != nil {
		log.Fatal(err)
	}
	// Rule 3: …and a payroll review escalates to the board (a cascade).
	if err := engine.AddRule("escalate",
		"panic :- review(R).",
		active.InsertAction(store.Ins("board", relation.Strs("notified")))); err != nil {
		log.Fatal(err)
	}

	updates := []store.Update{
		store.Ins("dept", relation.Strs("sales")),                                         // independent of every rule
		store.Ins("emp", relation.TupleOf(ast.Str("ann"), ast.Str("toy"), ast.Int(50))),   // filtered for payroll (50 ≤ 100)
		store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("ghost"), ast.Int(60))), // fires audit
		store.Ins("emp", relation.TupleOf(ast.Str("eve"), ast.Str("toy"), ast.Int(900))),  // fires payroll, cascades
	}
	for _, u := range updates {
		fired, err := engine.Apply(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s fired: %v\n", u, fired)
	}

	st := engine.Stats()
	fmt.Printf("\nupdates: %d   rule evaluations: %d   filtered out: %d   firings: %d\n",
		st.UpdatesSeen, st.RuleEvaluations, st.FilteredOut, st.Firings)
	fmt.Println("(the Section 4 independence filter skipped", st.FilteredOut,
		"(rule,update) condition evaluations)")
	if db.Contains("board", relation.Strs("notified")) {
		fmt.Println("cascade reached the board, as intended")
	}
}
