// Quickstart: manage two constraints over a small database and watch the
// staged checker decide updates with as little information as possible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
)

func main() {
	// A database: employees and departments.
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram(`
		dept(toy). dept(shoe).
		emp(ann, toy, 50).
	`)); err != nil {
		log.Fatal(err)
	}

	// A checker with the paper's two running constraints (Example 4.1):
	// referential integrity and a salary cap.
	chk := core.New(db, core.Options{})
	for name, src := range map[string]string{
		"referential": "panic :- emp(E,D,S) & not dept(D).",
		"salary-cap":  "panic :- emp(E,D,S) & S > 100.",
	} {
		if err := chk.AddConstraintSource(name, src); err != nil {
			log.Fatal(err)
		}
	}

	// Push updates through the pipeline.
	updates := []store.Update{
		store.Ins("dept", relation.Strs("sales")),                                         // safe from constraints+update alone
		store.Ins("emp", relation.TupleOf(ast.Str("bob"), ast.Str("toy"), ast.Int(60))),   // needs data
		store.Ins("emp", relation.TupleOf(ast.Str("eve"), ast.Str("ghost"), ast.Int(70))), // violates referential
		store.Ins("emp", relation.TupleOf(ast.Str("zed"), ast.Str("toy"), ast.Int(900))),  // violates cap: caught with no data at all
	}
	for _, u := range updates {
		rep, err := chk.Apply(u)
		if err != nil {
			log.Fatal(err)
		}
		status := "applied"
		if !rep.Applied {
			status = fmt.Sprintf("REJECTED (violates %v)", rep.Violations())
		}
		fmt.Printf("%-22s -> %s\n", u, status)
		for _, d := range rep.Decisions {
			fmt.Printf("    %-12s decided by %-11s (%s)\n", d.Constraint, d.Phase, d.Verdict)
		}
	}

	st := chk.Stats()
	fmt.Printf("\n%d updates, %d rejected; decisions by phase: %v\n",
		st.Updates, st.Rejected, st.ByPhase)
}
