// Employees: the paper's running example database (Sections 2 and 4).
// It manages all four example constraints — including the recursive
// "nobody is their own boss" query — and replays the paper's worked
// updates: inserting toy into dept (Example 4.1) and deleting
// (jones,shoe,50) from emp (Example 4.2), showing the rewritten
// constraints and the subsumption checks the paper performs.
//
//	go run ./examples/employees
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/store"
	"repro/internal/subsume"
)

func main() {
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram(`
		dept(toy). dept(shoe). dept(sales). dept(accounting).
		salRange(toy, 10, 60). salRange(shoe, 20, 80).
		salRange(sales, 30, 90). salRange(accounting, 30, 90).
		emp(jones, shoe, 50).
		emp(ann, toy, 40).
		emp(bob, sales, 60).
		manager(toy, bob). manager(shoe, bob). manager(sales, carol).
	`)); err != nil {
		log.Fatal(err)
	}

	chk := core.New(db, core.Options{})
	constraints := map[string]string{
		// Example 2.2: low-paid employees must be in a known department.
		"known-dept": "panic :- emp(E,D,S) & not dept(D) & S < 100.",
		// Example 2.3: salary within the department range.
		"range": `panic :- emp(E,D,S) & salRange(D,Low,High) & S < Low.
		          panic :- emp(E,D,S) & salRange(D,Low,High) & S > High.`,
		// Example 2.4: no one is their own boss (recursive).
		"no-self-boss": `panic :- boss(E,E).
		                 boss(E,M) :- emp(E,D,S) & manager(D,M).
		                 boss(E,F) :- boss(E,G) & boss(G,F).`,
	}
	for name, src := range constraints {
		if err := chk.AddConstraintSource(name, src); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("constraints loaded:", chk.Constraints())

	// --- Example 4.1: insert toy into dept ------------------------------
	c1 := parser.MustParseProgram("panic :- emp(E,D,S) & not dept(D).")
	fmt.Println("\nExample 4.1: rewriting C1 for the insertion of toy into dept")
	c3, err := rewrite.Insert(c1, "dept", relation.Strs("toy"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C3 (C1 after the insertion, over the old database):")
	fmt.Println(indent(c3.String()))
	res, err := subsume.Subsumes(c3, []*ast.Program{c1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C3 ⊑ C1?  %s (method %s)  — the insertion cannot violate C1\n", res.Verdict, res.Method)

	// --- Example 4.2: delete (jones,shoe,50) from emp --------------------
	fmt.Println("\nExample 4.2: rewriting for the deletion of (jones,shoe,50) from emp")
	tup := relation.TupleOf(ast.Str("jones"), ast.Str("shoe"), ast.Int(50))
	c4, err := rewrite.DeleteArith(c1, "emp", tup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C4 (arithmetic <>-split encoding):")
	fmt.Println(indent(c4.String()))
	res, err = subsume.Subsumes(c4, []*ast.Program{c1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C4 ⊑ C1?  %s (method %s)  — the deletion cannot violate C1\n", res.Verdict, res.Method)

	c5, err := rewrite.DeleteNeg(c1, "emp", tup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C5 (negated-subgoal encoding, the isJones trick):")
	fmt.Println(indent(c5.String()))

	// --- Live updates through the pipeline -------------------------------
	fmt.Println("\nLive updates:")
	updates := []store.Update{
		// A new department: certified from constraints+update alone.
		store.Ins("dept", relation.Strs("research")),
		// A valid hire and an under-range hire (Example 2.3's constraint).
		store.Ins("emp", relation.TupleOf(ast.Str("dina"), ast.Str("toy"), ast.Int(55))),
		store.Ins("emp", relation.TupleOf(ast.Str("earl"), ast.Str("toy"), ast.Int(5))), // below salRange(toy): rejected
		// ann (toy dept) will run research; frank joins research.
		store.Ins("manager", relation.Strs("research", "ann")),
		store.Ins("emp", relation.TupleOf(ast.Str("frank"), ast.Str("research"), ast.Int(50))),
		// Making frank the manager of toy closes the cycle
		// frank -> ann (research) -> frank (toy): rejected by the
		// recursive no-self-boss constraint (Example 2.4).
		store.Ins("manager", relation.Strs("toy", "frank")),
	}
	for _, u := range updates {
		rep, err := chk.Apply(u)
		if err != nil {
			log.Fatal(err)
		}
		status := "applied"
		if !rep.Applied {
			status = fmt.Sprintf("REJECTED %v", rep.Violations())
		}
		fmt.Printf("  %-32s %s\n", u, status)
	}
	if bad, err := chk.CheckAll(); err != nil || len(bad) > 0 {
		log.Fatalf("invariant broken: %v %v", bad, err)
	}
	fmt.Println("\nall constraints hold; phase stats:", chk.Stats().ByPhase)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
