// Distributed: the paper's motivating deployment (Section 1). A local
// site owns the interval relation l and receives the update stream; the
// job relation r lives at a remote site where every access costs a round
// trip. The example runs the same stream under the staged
// partial-information pipeline and under the naive always-evaluate
// strategy, and reports the remote traffic each one generates.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	const (
		nLocal   = 25  // pre-existing local windows
		nRemote  = 300 // remote job times (outside the window spread)
		nUpdates = 60
	)
	run := func(naive bool) *dist.System {
		rng := rand.New(rand.NewSource(42))
		db := store.New()
		for _, t := range workload.Intervals(rng, nLocal, 25, 300) {
			if _, err := db.Insert("l", t); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < nRemote; i++ {
			if _, err := db.Insert("r", relation.Ints(5000+rng.Int63n(1000))); err != nil {
				log.Fatal(err)
			}
		}
		opts := core.Options{LocalRelations: []string{"l"}}
		if naive {
			opts.DisableUpdateOnly = true
			opts.DisableLocalData = true
		}
		sys := dist.NewWithOptions(db, opts, dist.DefaultCost)
		if err := sys.Checker.AddConstraintSource("no-job-in-window",
			"panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y."); err != nil {
			log.Fatal(err)
		}
		db.ResetReads()
		for _, u := range workload.IntervalInserts(rng, nUpdates, 40, 300, "l") {
			if _, err := sys.Apply(u); err != nil {
				log.Fatal(err)
			}
		}
		return sys
	}

	fmt.Printf("scenario: %d local windows, %d remote jobs, %d window insertions\n",
		nLocal, nRemote, nUpdates)
	fmt.Println("cost model: remote round trip = 100 units, remote tuple = 1 unit")

	fmt.Println("\n--- staged pipeline (Sections 3-6) ---")
	staged := run(false)
	fmt.Print(staged.Report())

	fmt.Println("\n--- naive strategy (always evaluate globally) ---")
	naive := run(true)
	fmt.Print(naive.Report())

	s, n := staged.Stats(), naive.Stats()
	if n.Cost > 0 {
		fmt.Printf("\nremote cost saved by partial-information checking: %.0f%% (%.0f -> %.0f)\n",
			100*(n.Cost-s.Cost)/n.Cost, n.Cost, s.Cost)
	}
}
