// Views: the paper's view-maintenance application (Section 2,
// "Applications"; Tompa & Blakeley [1988], Blakeley et al. [1989]). A
// materialized view of highly paid employees is maintained under an
// update stream: updates proved irrelevant by the Section 4 machinery
// skip recomputation entirely; the rest are maintained by exact deltas.
//
//	go run ./examples/views
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/view"
)

func main() {
	db := store.New()
	if err := db.LoadFacts(parser.MustParseProgram(`
		emp(ann, toy, 120). emp(bob, shoe, 80). emp(carl, toy, 95).
	`)); err != nil {
		log.Fatal(err)
	}
	v, err := view.New("rich", parser.MustParseProgram(
		"rich(E) :- emp(E,D,S) & S > 100."))
	if err != nil {
		log.Fatal(err)
	}
	mat, err := v.Materialize(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("view rich(E) :- emp(E,D,S) & S > 100.")
	fmt.Println("initial contents:", mat)

	updates := []store.Update{
		store.Ins("emp", relation.TupleOf(ast.Str("dina"), ast.Str("toy"), ast.Int(90))),  // irrelevant (S ≤ 100)
		store.Ins("dept", relation.Strs("sales")),                                         // irrelevant (unused relation)
		store.Ins("emp", relation.TupleOf(ast.Str("eve"), ast.Str("shoe"), ast.Int(200))), // relevant
		store.Del("emp", relation.TupleOf(ast.Str("ann"), ast.Str("toy"), ast.Int(120))),  // relevant
		store.Del("emp", relation.TupleOf(ast.Str("bob"), ast.Str("shoe"), ast.Int(80))),  // irrelevant
	}
	skipped := 0
	for _, u := range updates {
		irr, err := view.Irrelevant(v, u)
		if err != nil {
			log.Fatal(err)
		}
		if irr {
			skipped++
			if err := u.Apply(db); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-28s irrelevant — view untouched\n", u)
			continue
		}
		added, removed, err := view.Delta(v, db, u)
		if err != nil {
			log.Fatal(err)
		}
		if err := u.Apply(db); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s relevant    +%v -%v\n", u, added, removed)
	}
	final, err := v.Materialize(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final contents:", final)
	fmt.Printf("%d of %d updates proved irrelevant without touching the view\n",
		skipped, len(updates))
}
