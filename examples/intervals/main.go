// Intervals: the paper's forbidden-intervals scenario (Examples 5.3 and
// 6.1). A local relation l holds maintenance windows (lo, hi); a remote
// relation r holds scheduled job times. The constraint forbids any job
// inside a window. When a new window is inserted, the complete local
// test asks whether the existing windows already cover it — if so, no
// remote lookup is needed.
//
// The example runs all three implementations side by side: the Theorem
// 5.2 reduction containment, the direct interval sweep, and the Fig 6.1
// recursive datalog program, and prints the merged forbidden region.
//
//	go run ./examples/intervals
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/icq"
	"repro/internal/parser"
	"repro/internal/reduction"
	"repro/internal/relation"
	"repro/internal/store"
)

func main() {
	rule := parser.MustParseConstraint("panic :- l(X,Y) & r(Z) & X <= Z & Z <= Y.")
	cqc, err := ast.NewCQC(rule, "l")
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := icq.Analyze(cqc)
	if err != nil {
		log.Fatal(err)
	}

	L := []relation.Tuple{
		relation.Ints(3, 6),
		relation.Ints(5, 10),
		relation.Ints(20, 30),
	}
	db := store.New()
	for _, t := range L {
		if _, err := db.Insert("l", t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("constraint:", rule)
	fmt.Println("local windows:", L)

	var existing []icq.Interval
	for _, t := range L {
		ivs, err := analysis.IntervalsFor(t)
		if err != nil {
			log.Fatal(err)
		}
		existing = append(existing, ivs...)
	}
	fmt.Println("merged forbidden region:", icq.Union(existing))
	fmt.Println()

	inserts := []relation.Tuple{
		relation.Ints(4, 8),   // inside [3,10]: safe
		relation.Ints(3, 10),  // exactly the hull: safe
		relation.Ints(8, 12),  // escapes past 10: must ask remote
		relation.Ints(21, 29), // inside [20,30]: safe
		relation.Ints(15, 18), // entirely new ground: must ask remote
		relation.Ints(9, 2),   // empty window: trivially safe
	}
	fmt.Printf("%-10s  %-12s  %-10s  %-10s  %-10s\n", "insert", "interval", "thm5.2", "sweep", "datalog")
	for _, ins := range inserts {
		ivs, err := analysis.IntervalsFor(ins)
		if err != nil {
			log.Fatal(err)
		}
		ivStr := "(empty)"
		if len(ivs) == 1 {
			ivStr = ivs[0].String()
		}
		t52, err := reduction.LocalTest(cqc, ins, L)
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := analysis.CertifyInsert(ins, L)
		if err != nil {
			log.Fatal(err)
		}
		datalog, err := analysis.CertifyInsertDatalog(ins, db)
		if err != nil {
			log.Fatal(err)
		}
		if t52 != sweep || sweep != datalog {
			log.Fatalf("implementations disagree on %v: %v %v %v", ins, t52, sweep, datalog)
		}
		fmt.Printf("%-10s  %-12s  %-10s  %-10s  %-10s\n",
			ins, ivStr, verdict(t52), verdict(sweep), verdict(datalog))
	}
	fmt.Println("\nall three complete local tests agree (Theorems 5.2 and 6.1).")
}

func verdict(safe bool) string {
	if safe {
		return "safe"
	}
	return "ask-remote"
}
